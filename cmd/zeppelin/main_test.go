package main

import (
	"errors"
	"io"
	"strings"
	"testing"
)

// wantUsage asserts campaignCmd rejects the flags with a usageError —
// the class main surfaces as exit 2 plus usage, per the repository's
// flag-validation convention.
func wantUsage(t *testing.T, args []string, substr string) {
	t.Helper()
	err := campaignCmd(io.Discard, args, 1, 1, false)
	if err == nil {
		t.Fatalf("args %v must fail", args)
	}
	var ue usageError
	if !errors.As(err, &ue) {
		t.Fatalf("args %v: error %v is not a usage error", args, err)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("args %v: error %q does not mention %q", args, err, substr)
	}
}

func TestCampaignCmdRejectsInvalidFlags(t *testing.T) {
	wantUsage(t, []string{"-replan-cost", "-0.5"}, "-replan-cost")
	wantUsage(t, []string{"-iters", "0"}, "-iters")
	wantUsage(t, []string{"-faults", "bogus"}, "unknown scenario")
	wantUsage(t, []string{"-faults", "straggler:x=abc"}, "parameter")
	wantUsage(t, []string{"-faults", "straggler:nope=3"}, "does not take key")
	wantUsage(t, []string{"-faults", "straggler:rank=99"}, "outside world")
	wantUsage(t, []string{"-faults", "shrink:node=7"}, "outside")
	wantUsage(t, []string{"-arrival", "warp"}, "unknown arrival")
	wantUsage(t, []string{"-policy", "vibes"}, "unknown replan policy")
	wantUsage(t, []string{"-dataset", "imaginary"}, "unknown")
	wantUsage(t, []string{"extra-positional"}, "unexpected arguments")
}

func TestCampaignCmdRunsFaultedCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign in -short mode")
	}
	var sb strings.Builder
	err := campaignCmd(&sb, []string{"-iters", "6", "-faults", "straggler:from=2,to=4"}, 1, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"faults straggler", "straggler:rank4", "'S' = straggler/NIC"} {
		if !strings.Contains(out, want) {
			t.Errorf("campaign output missing %q:\n%s", want, out)
		}
	}
}

// TestCampaignCmdIncrementalMatchesStateless: the -incremental flag
// swaps Zeppelin's planner for the exact-mode incremental one, which
// must not move a single byte of the campaign artifact.
func TestCampaignCmdIncrementalMatchesStateless(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign in -short mode")
	}
	var plain, inc strings.Builder
	if err := campaignCmd(&plain, []string{"-iters", "5", "-json"}, 1, 2, false); err != nil {
		t.Fatal(err)
	}
	if err := campaignCmd(&inc, []string{"-iters", "5", "-incremental", "-json"}, 1, 2, false); err != nil {
		t.Fatal(err)
	}
	if plain.String() != inc.String() {
		t.Fatal("-incremental campaign artifact differs from the stateless planner's")
	}
}
