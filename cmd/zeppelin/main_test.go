package main

import (
	"errors"
	"io"
	"strings"
	"testing"
)

// wantUsage asserts campaignCmd rejects the flags with a usageError —
// the class main surfaces as exit 2 plus usage, per the repository's
// flag-validation convention.
func wantUsage(t *testing.T, args []string, substr string) {
	t.Helper()
	err := campaignCmd(io.Discard, args, 1, 1, false)
	if err == nil {
		t.Fatalf("args %v must fail", args)
	}
	var ue usageError
	if !errors.As(err, &ue) {
		t.Fatalf("args %v: error %v is not a usage error", args, err)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("args %v: error %q does not mention %q", args, err, substr)
	}
}

func TestCampaignCmdRejectsInvalidFlags(t *testing.T) {
	wantUsage(t, []string{"-replan-cost", "-0.5"}, "-replan-cost")
	wantUsage(t, []string{"-iters", "0"}, "-iters")
	wantUsage(t, []string{"-faults", "bogus"}, "unknown scenario")
	wantUsage(t, []string{"-faults", "straggler:x=abc"}, "parameter")
	wantUsage(t, []string{"-faults", "straggler:nope=3"}, "does not take key")
	wantUsage(t, []string{"-faults", "straggler:rank=99"}, "outside world")
	wantUsage(t, []string{"-faults", "shrink:node=7"}, "outside")
	wantUsage(t, []string{"-arrival", "warp"}, "unknown arrival")
	wantUsage(t, []string{"-policy", "vibes"}, "unknown replan policy")
	wantUsage(t, []string{"-dataset", "imaginary"}, "unknown")
	wantUsage(t, []string{"extra-positional"}, "unexpected arguments")
}

func TestCampaignCmdRunsFaultedCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign in -short mode")
	}
	var sb strings.Builder
	err := campaignCmd(&sb, []string{"-iters", "6", "-faults", "straggler:from=2,to=4"}, 1, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"faults straggler", "straggler:rank4", "'S' = straggler/NIC"} {
		if !strings.Contains(out, want) {
			t.Errorf("campaign output missing %q:\n%s", want, out)
		}
	}
}

// TestParseFlip: the -flip grammar resolves and validates.
func TestParseFlip(t *testing.T) {
	f, err := parseFlip("iter=7:decision=reuse")
	if err != nil || f.Iter != 7 || f.Decision != "reuse" {
		t.Fatalf("parseFlip = %+v, %v", f, err)
	}
	for _, bad := range []string{"", "iter=7", "decision=reuse", "iter=x:decision=reuse",
		"iter=7:decision=maybe", "iter=-2:decision=reuse", "iter=7:verdict=reuse"} {
		if _, err := parseFlip(bad); err == nil {
			t.Fatalf("parseFlip(%q) accepted", bad)
		}
	}
}

// TestReplayCmdRejectsInvalidFlags: flag mistakes are usage errors.
func TestReplayCmdRejectsInvalidFlags(t *testing.T) {
	cases := []struct {
		args   []string
		substr string
	}{
		{[]string{"-iters", "0"}, "-iters"},
		{[]string{"-flip", "iter=3"}, "decision"},
		{[]string{"-flip", "iter=3:decision=maybe"}, "decision"},
		{[]string{"-arrival", "warp"}, "unknown arrival"},
		{[]string{"extra"}, "unexpected arguments"},
	}
	for _, c := range cases {
		err := replayCmd(io.Discard, c.args, false)
		var ue usageError
		if err == nil || !errors.As(err, &ue) || !strings.Contains(err.Error(), c.substr) {
			t.Fatalf("args %v: err = %v, want usage error mentioning %q", c.args, err, c.substr)
		}
	}
}

// TestReplayCmdIdentityAndFlip: without -flip the replay reports
// bit-identity; with one it reports the counterfactual delta.
func TestReplayCmdIdentityAndFlip(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaigns in -short mode")
	}
	var ident strings.Builder
	if err := replayCmd(&ident, []string{"-iters", "20"}, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ident.String(), "bit-identically") {
		t.Fatalf("identity replay output:\n%s", ident.String())
	}
	var flipped strings.Builder
	if err := replayCmd(&flipped, []string{"-iters", "20", "-flip", "iter=10:decision=reuse"}, false); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"flip iter 10 -> reuse", "counterfactual:", "delta:"} {
		if !strings.Contains(flipped.String(), want) {
			t.Fatalf("flip replay output missing %q:\n%s", want, flipped.String())
		}
	}
}

// TestCampaignCmdIncrementalMatchesStateless: the -incremental flag
// swaps Zeppelin's planner for the exact-mode incremental one, which
// must not move a single byte of the campaign artifact.
func TestCampaignCmdIncrementalMatchesStateless(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign in -short mode")
	}
	var plain, inc strings.Builder
	if err := campaignCmd(&plain, []string{"-iters", "5", "-json"}, 1, 2, false); err != nil {
		t.Fatal(err)
	}
	if err := campaignCmd(&inc, []string{"-iters", "5", "-incremental", "-json"}, 1, 2, false); err != nil {
		t.Fatal(err)
	}
	if plain.String() != inc.String() {
		t.Fatal("-incremental campaign artifact differs from the stateless planner's")
	}
}
