// Command zeppelin regenerates the paper's evaluation tables and figures
// on the simulated cluster substrate.
//
// Usage:
//
//	zeppelin [-seeds N] [-workers N] [-json] <experiment>
//
// where <experiment> is one of: fig1, table2, fig3, fig5, fig8, fig9,
// fig10, fig11, fig12, table3, all.
//
// -workers bounds the concurrent simulation pool (default GOMAXPROCS);
// results are bit-identical for every worker count. -json emits the
// experiment's structured results as a JSON artifact instead of the
// paper-style text rendering.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"zeppelin/internal/experiments"
	"zeppelin/internal/runner"
	"zeppelin/internal/workload"
)

func main() {
	seeds := flag.Int("seeds", 3, "independently sampled batches averaged per cell")
	workers := flag.Int("workers", 0, "concurrent simulation workers (default GOMAXPROCS)")
	jsonOut := flag.Bool("json", false, "emit structured results as JSON instead of text")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: zeppelin [-seeds N] [-workers N] [-json] <fig1|table2|fig3|fig5|fig8|fig9|fig10|fig11|fig12|table3|all>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	// One engine serves every figure of the invocation, so cells shared
	// between figures (`all` has several) simulate once.
	opts := experiments.Options{
		Seeds:   *seeds,
		Workers: *workers,
		Engine:  runner.New(runner.Options{Workers: *workers}),
	}
	var err error
	if *jsonOut {
		err = dispatchJSON(os.Stdout, flag.Arg(0), opts)
	} else {
		err = dispatch(os.Stdout, flag.Arg(0), opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "zeppelin:", err)
		os.Exit(1)
	}
}

// experimentOrder is the `all` sequence, in paper order.
var experimentOrder = []string{"fig1", "table2", "fig3", "fig5", "fig8", "fig9", "fig10", "fig11", "fig12", "table3"}

func dispatch(w io.Writer, name string, opts experiments.Options) error {
	runs := map[string]func(io.Writer, experiments.Options) error{
		"fig1":   func(w io.Writer, _ experiments.Options) error { experiments.WriteFig1(w); return nil },
		"table2": func(w io.Writer, _ experiments.Options) error { experiments.WriteTable2(w); return nil },
		"fig3":   func(w io.Writer, opts experiments.Options) error { return experiments.WriteFig3(w, opts) },
		"fig5":   func(w io.Writer, _ experiments.Options) error { experiments.WriteFig5(w); return nil },
		"fig8":   experiments.WriteFig8,
		"fig9":   experiments.WriteFig9,
		"fig10":  experiments.WriteFig10,
		"fig11":  experiments.WriteFig11,
		"fig12":  func(w io.Writer, opts experiments.Options) error { return experiments.WriteFig12(w, opts) },
		"table3": func(w io.Writer, opts experiments.Options) error { return writeTable3(w, opts) },
	}
	if name == "all" {
		for _, key := range experimentOrder {
			fmt.Fprintf(w, "\n================ %s ================\n", key)
			if err := runs[key](w, opts); err != nil {
				return err
			}
		}
		return nil
	}
	run, ok := runs[name]
	if !ok {
		return fmt.Errorf("unknown experiment %q", name)
	}
	return run(w, opts)
}

// writeTable3 is WriteTable3 with the invocation's engine plumbed in.
func writeTable3(w io.Writer, opts experiments.Options) error {
	cols, err := experiments.Table3Opts(opts)
	if err != nil {
		return err
	}
	return experiments.RenderTable3(w, cols)
}

// result computes one experiment's structured result for JSON emission.
func result(name string, opts experiments.Options) (any, error) {
	switch name {
	case "fig1":
		return experiments.Fig1(), nil
	case "table2":
		return workload.Eval, nil
	case "fig3":
		return experiments.Fig3All(opts)
	case "fig5":
		return experiments.Fig5(), nil
	case "fig8":
		return experiments.Fig8(opts)
	case "fig9":
		return experiments.Fig9(opts)
	case "fig10":
		return experiments.Fig10(opts)
	case "fig11":
		return experiments.Fig11(opts)
	case "fig12":
		return experiments.Fig12Traces(opts)
	case "table3":
		return experiments.Table3Opts(opts)
	}
	return nil, fmt.Errorf("unknown experiment %q", name)
}

func dispatchJSON(w io.Writer, name string, opts experiments.Options) error {
	var payload any
	if name == "all" {
		// An ordered array, not a map: encoding/json sorts map keys, which
		// would emit fig10 before fig3 and defeat the paper ordering.
		type namedResult struct {
			Name   string `json:"name"`
			Result any    `json:"result"`
		}
		all := make([]namedResult, 0, len(experimentOrder))
		for _, key := range experimentOrder {
			r, err := result(key, opts)
			if err != nil {
				return err
			}
			all = append(all, namedResult{Name: key, Result: r})
		}
		payload = all
	} else {
		r, err := result(name, opts)
		if err != nil {
			return err
		}
		payload = r
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(payload)
}
