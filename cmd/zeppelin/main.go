// Command zeppelin regenerates the paper's evaluation tables and figures
// on the simulated cluster substrate.
//
// Usage:
//
//	zeppelin [-seeds N] <experiment>
//
// where <experiment> is one of: fig1, table2, fig3, fig5, fig8, fig9,
// fig10, fig11, fig12, table3, all.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"zeppelin/internal/experiments"
)

func main() {
	seeds := flag.Int("seeds", 3, "independently sampled batches averaged per cell")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: zeppelin [-seeds N] <fig1|table2|fig3|fig5|fig8|fig9|fig10|fig11|fig12|table3|all>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	opts := experiments.Options{Seeds: *seeds}
	if err := dispatch(os.Stdout, flag.Arg(0), opts); err != nil {
		fmt.Fprintln(os.Stderr, "zeppelin:", err)
		os.Exit(1)
	}
}

func dispatch(w io.Writer, name string, opts experiments.Options) error {
	runs := map[string]func(io.Writer, experiments.Options) error{
		"fig1":   func(w io.Writer, _ experiments.Options) error { experiments.WriteFig1(w); return nil },
		"table2": func(w io.Writer, _ experiments.Options) error { experiments.WriteTable2(w); return nil },
		"fig3":   func(w io.Writer, _ experiments.Options) error { experiments.WriteFig3(w); return nil },
		"fig5":   func(w io.Writer, _ experiments.Options) error { experiments.WriteFig5(w); return nil },
		"fig8":   experiments.WriteFig8,
		"fig9":   experiments.WriteFig9,
		"fig10":  experiments.WriteFig10,
		"fig11":  experiments.WriteFig11,
		"fig12":  func(w io.Writer, _ experiments.Options) error { return experiments.WriteFig12(w) },
		"table3": func(w io.Writer, _ experiments.Options) error { return experiments.WriteTable3(w) },
	}
	if name == "all" {
		for _, key := range []string{"fig1", "table2", "fig3", "fig5", "fig8", "fig9", "fig10", "fig11", "fig12", "table3"} {
			fmt.Fprintf(w, "\n================ %s ================\n", key)
			if err := runs[key](w, opts); err != nil {
				return err
			}
		}
		return nil
	}
	run, ok := runs[name]
	if !ok {
		return fmt.Errorf("unknown experiment %q", name)
	}
	return run(w, opts)
}
