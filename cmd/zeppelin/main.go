// Command zeppelin regenerates the paper's evaluation tables and figures
// on the simulated cluster substrate, and runs streaming long-horizon
// campaigns on top of the same cells. It is the reference client of the
// public pkg/zeppelin API: every subcommand drives the same versioned
// surface the zeppelind HTTP daemon serves.
//
// Usage:
//
//	zeppelin [-seeds N] [-workers N] [-json] <experiment>
//	zeppelin [-seeds N] [-workers N] campaign [-iters N] [-arrival P] [-drift D] [-policy P] [-json] [...]
//	zeppelin [-seeds N] [-workers N] tune [-space S] [-budget N] [-weights W] [-json] [...]
//	zeppelin bench [-ranks R1,R2] [-iters N] [-solve-workers N] [-json]
//	zeppelin replay [-iters N] [-seed N] [-flip iter=N:decision=replan|reuse] [-json] [...]
//	zeppelin -version
//
// where <experiment> is one of: fig1, table2, fig3, fig5, fig8, fig9,
// fig10, fig11, fig12, fig13, fig14, fig15, table3, all.
//
// -workers bounds the concurrent simulation pool (default GOMAXPROCS);
// results are bit-identical for every worker count. -json emits the
// experiment's structured results as a JSON artifact instead of the
// paper-style text rendering.
//
// The campaign subcommand simulates a multi-iteration training stream:
// an arrival process (steady, poisson, bursty, drifting mixture, or
// deterministic trace replay) feeds batches to every compared method
// while a replanning controller decides when to re-run the partitioner.
// A -faults scenario (straggler, NIC degradation, fail-stop node loss,
// elastic shrink/grow) runs the whole stream under a deterministic
// fault schedule, with fault/recovery markers in the per-iteration
// records and the rendered timeline.
//
// The tune subcommand closes the loop: it sweeps a declared parameter
// space — replan policy and threshold, replan cost, admission capacity,
// autoscaler gains — over full campaign runs of one scenario (default:
// the fig13 drifting mixture) and reports the configuration that
// maximizes a weighted fitness of goodput, p99 iteration time,
// migration cost, and utilization, as a ready-to-paste campaign flag
// set. The search is deterministic: grid seeding plus a seeded
// mutation/selection loop, bit-identical at every -workers count.
//
// The bench subcommand measures the planner fast path in-process (the
// fig15 machinery: full solve vs incremental re-planning over a churning
// stream) and emits results in the shared benchfmt JSON schema — the
// same shape as the CI bench job's BENCH_*.json artifact, so the same
// tooling reads both (the measurements themselves differ: CI aggregates
// go-test samples, bench reports per-rank-count p50s).
//
// The replay subcommand is the counterfactual engine: it re-runs one
// campaign deterministically and, with -flip iter=N:decision=replan|reuse,
// inverts exactly one replan verdict, reporting the goodput, p99
// iteration time, and migration-cost delta against the factual run.
// Without -flip the replay is a determinism check — it must reproduce
// the factual event stream bit for bit. The campaign cell is shaped by
// the same flags the campaign subcommand takes, defaulting to the
// drifting arrival so the threshold controller has verdicts worth
// flipping.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"

	"zeppelin/pkg/zeppelin"
)

// usageError marks a flag-validation failure: main prints usage and
// exits 2, the convention every experiment flag already follows.
type usageError struct{ err error }

func (e usageError) Error() string { return e.err.Error() }
func (e usageError) Unwrap() error { return e.err }

func usageErrorf(format string, args ...any) error {
	return usageError{fmt.Errorf(format, args...)}
}

func main() {
	seeds := flag.Int("seeds", 3, "independently sampled batches (or campaigns) averaged per cell; must be >= 1")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent simulation workers; must be >= 1")
	jsonOut := flag.Bool("json", false, "emit structured results as JSON instead of text")
	version := flag.Bool("version", false, "print version information and exit")
	flag.Usage = usage
	flag.Parse()
	if *version {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(zeppelin.Version()) //nolint:errcheck
		return
	}
	if *seeds < 1 {
		fmt.Fprintf(os.Stderr, "zeppelin: -seeds must be >= 1, got %d\n", *seeds)
		flag.Usage()
		os.Exit(2)
	}
	if *workers < 1 {
		fmt.Fprintf(os.Stderr, "zeppelin: -workers must be >= 1, got %d\n", *workers)
		flag.Usage()
		os.Exit(2)
	}
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if args[0] == "campaign" {
		if err := campaignCmd(os.Stdout, args[1:], *seeds, *workers, *jsonOut); err != nil {
			fail(err)
		}
		return
	}
	if args[0] == "tune" {
		if err := tuneCmd(os.Stdout, args[1:], *seeds, *workers, *jsonOut); err != nil {
			fail(err)
		}
		return
	}
	if args[0] == "serve" {
		if err := serveCmd(os.Stdout, args[1:], *seeds, *workers, *jsonOut); err != nil {
			fail(err)
		}
		return
	}
	if args[0] == "bench" {
		if err := benchCmd(os.Stdout, args[1:], *jsonOut); err != nil {
			fail(err)
		}
		return
	}
	if args[0] == "replay" {
		if err := replayCmd(os.Stdout, args[1:], *jsonOut); err != nil {
			fail(err)
		}
		return
	}
	if len(args) != 1 {
		flag.Usage()
		os.Exit(2)
	}
	name := args[0]
	if name != "all" && !zeppelin.IsExperiment(name) {
		fmt.Fprintf(os.Stderr, "zeppelin: unknown experiment %q\n", name)
		flag.Usage()
		os.Exit(2)
	}
	opts := zeppelin.Options{Seeds: *seeds, Workers: *workers}
	if err := experimentCmd(os.Stdout, name, opts, *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "zeppelin:", err)
		os.Exit(1)
	}
}

// fail reports a subcommand error, exiting 2 with usage for
// flag-validation failures and 1 otherwise.
func fail(err error) {
	fmt.Fprintln(os.Stderr, "zeppelin:", err)
	var ue usageError
	if errors.As(err, &ue) {
		flag.Usage()
		os.Exit(2)
	}
	os.Exit(1)
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: zeppelin [-seeds N] [-workers N] [-json] <experiment>
       zeppelin [-seeds N] [-workers N] campaign [flags]
       zeppelin [-seeds N] [-workers N] serve [flags]
       zeppelin [-seeds N] [-workers N] tune [flags]
       zeppelin bench [-ranks R1,R2] [-iters N] [-solve-workers N] [-json]
       zeppelin replay [flags]
       zeppelin -version

experiments: %s
campaign flags: -iters N  -arrival steady|poisson|bursty|drift|replay
                -dataset NAME  -drift a,b,c  -policy always|never|threshold|periodic
                -threshold X  -every N  -replan-cost SECONDS (>= 0)
                -capacity X (admission capacity factor; 0 selects 1.25)
                -faults none|straggler|nic|failstop|shrink[:k=v,...]
                -autoscale on|k=v,... (closed-loop world sizing; keys
                min|max|up-util|down-util|step|cooldown)
                -incremental (Zeppelin plans through the incremental planner)
                -serve SPEC (serving scenario; replaces the cell flags)  -json
serve flags:    -serve SPEC (clients=N,arrival=poisson|gamma:cv=X|weibull:shape=X,
                rate=R@from-to;...,slo=name:p99=DUR:prio=N;...,dataset=NAME,
                sessions=N,prefix=F,form=fcfs|priority|sjf,horizon=DUR)
                -iters N  -trace FILE (replay NDJSON requests)
                -dump-trace FILE (record the timeline and exit)  -seed N  -json
tune flags:     -space GRAMMAR (key=value dims; a|b sets, lo:hi intervals;
                keys policy|threshold|every|replan-cost|capacity|autoscale|
                up-util|down-util|cooldown|step)  -budget N  -iters N
                -weights GOODPUT,P99,MIGRATION,UTIL  -search-seed N
                (plus the campaign cell flags: -arrival, -dataset, -drift,
                -faults)  -json
bench flags:    -ranks 64,256 (world sizes, multiples of 8)  -iters N
                -solve-workers N (fan the full solve; plans stay bit-identical)
                -json (benchfmt artifact, the BENCH_*.json schema)
replay flags:   -iters N  -seed N  -flip iter=N:decision=replan|reuse
                (plus the campaign cell flags: -arrival, -dataset, -drift,
                -policy, -threshold, -every, -replan-cost, -faults)  -json
`, strings.Join(append(zeppelin.Experiments(), "all"), " "))
	flag.PrintDefaults()
}

// experimentCmd renders or JSON-emits one experiment (or `all`, which
// shares one simulation engine across every figure so common cells
// simulate once).
func experimentCmd(w io.Writer, name string, opts zeppelin.Options, jsonOut bool) error {
	ctx := context.Background()
	if !jsonOut {
		if name == "all" {
			return zeppelin.RenderAllExperiments(ctx, w, opts)
		}
		return zeppelin.RenderExperiment(ctx, w, name, opts)
	}
	var payload any
	if name == "all" {
		all, err := zeppelin.RunAllExperiments(ctx, opts)
		if err != nil {
			return err
		}
		payload = all
	} else {
		r, err := zeppelin.RunExperiment(ctx, name, opts)
		if err != nil {
			return err
		}
		payload = r
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(payload)
}

// ---------------------------------------------------------------------
// bench subcommand
// ---------------------------------------------------------------------

// benchCmd measures the planner fast path through the public API and
// emits results in the shared benchfmt schema. Text mode prints
// go-test-style benchmark lines, which benchgate can also parse.
func benchCmd(w io.Writer, args []string, jsonOut bool) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	ranksFlag := fs.String("ranks", "64,256", "comma-separated world sizes (ranks, multiples of 8)")
	iters := fs.Int("iters", 0, "planning stream length per cell; must be >= 2 (0 selects the fig15 default)")
	solveWorkers := fs.Int("solve-workers", 0, "solve fan-out for the full planner; <= 1 runs single-threaded")
	subJSON := fs.Bool("json", false, "emit the benchfmt artifact as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return usageErrorf("bench: unexpected arguments %q", fs.Args())
	}
	if *iters != 0 && *iters < 2 {
		return usageErrorf("bench: -iters must be >= 2, got %d", *iters)
	}
	if *solveWorkers < 0 {
		return usageErrorf("bench: -solve-workers must be >= 0, got %d", *solveWorkers)
	}
	var ranks []int
	for _, part := range strings.Split(*ranksFlag, ",") {
		r, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || r <= 0 {
			return usageErrorf("bench: bad ranks value %q", part)
		}
		ranks = append(ranks, r)
	}
	jsonOut = jsonOut || *subJSON

	art, err := zeppelin.RunPlannerBench(context.Background(),
		zeppelin.BenchOptions{Ranks: ranks, Iters: *iters, SolveWorkers: *solveWorkers})
	if err != nil {
		return usageError{err}
	}
	if jsonOut {
		return art.WriteJSON(w)
	}
	return art.WriteText(w)
}

// ---------------------------------------------------------------------
// replay subcommand
// ---------------------------------------------------------------------

// parseFlip resolves "-flip iter=N:decision=replan|reuse".
func parseFlip(s string) (*zeppelin.FlipSpec, error) {
	f := &zeppelin.FlipSpec{Iter: -1}
	for _, part := range strings.Split(s, ":") {
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return nil, usageErrorf("replay: bad -flip component %q (want key=value)", part)
		}
		switch k {
		case "iter":
			n, err := strconv.Atoi(v)
			if err != nil {
				return nil, usageErrorf("replay: bad -flip iter %q", v)
			}
			f.Iter = n
		case "decision":
			f.Decision = v
		default:
			return nil, usageErrorf("replay: unknown -flip key %q (want iter, decision)", k)
		}
	}
	if err := f.Validate(); err != nil {
		return nil, usageError{err}
	}
	return f, nil
}

// replayCmd runs the counterfactual engine: one deterministic campaign
// re-run with at most one replan verdict flipped, reporting the
// goodput/p99/migration-cost delta against the factual run (or a
// bit-identity check with no flip). The campaign always plans through
// the incremental planner — replan decisions only shape the stream
// there.
func replayCmd(w io.Writer, args []string, jsonOut bool) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	iters := fs.Int("iters", 50, "campaign iterations; must be >= 1")
	seed := fs.Int64("seed", 0, "campaign RNG seed")
	arrivalName := fs.String("arrival", "drift", "arrival process: steady|poisson|bursty|drift|replay")
	datasetName := fs.String("dataset", "arxiv", "base dataset for steady/poisson/bursty/replay arrivals")
	driftPath := fs.String("drift", "arxiv,github,prolong64k", "comma-separated dataset waypoints for -arrival drift")
	policyName := fs.String("policy", "threshold", "replan policy: always|never|threshold|periodic")
	threshold := fs.Float64("threshold", zeppelin.DefaultThreshold, "imbalance ratio for -policy threshold")
	every := fs.Int("every", 10, "replan cadence for -policy periodic")
	replanCost := fs.Float64("replan-cost", zeppelin.DefaultReplanCostSec,
		"seconds charged per replan; must be >= 0 (0 selects the default)")
	faultsSpec := fs.String("faults", "none",
		"fault scenario: none|straggler|nic|failstop|shrink, optionally parameterized as name:key=v,...")
	flipSpec := fs.String("flip", "", "decision to invert, as iter=N:decision=replan|reuse (empty checks bit-identity)")
	subJSON := fs.Bool("json", false, "emit the replay report as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return usageErrorf("replay: unexpected arguments %q", fs.Args())
	}
	if *iters < 1 {
		return usageErrorf("replay: -iters must be >= 1, got %d", *iters)
	}
	if *replanCost < 0 {
		return usageErrorf("replay: -replan-cost must be >= 0, got %v", *replanCost)
	}
	jsonOut = jsonOut || *subJSON

	req := zeppelin.ReplayRequest{Campaign: zeppelin.CampaignRequest{
		Workload: zeppelin.WorkloadSpec{
			Dataset: *datasetName,
			Arrival: *arrivalName,
		},
		Policy: zeppelin.PolicySpec{
			Name:      *policyName,
			Threshold: *threshold,
			Every:     *every,
		},
		Faults:        *faultsSpec,
		Iters:         *iters,
		Seed:          *seed,
		ReplanCostSec: *replanCost,
		Incremental:   true,
	}}
	if *arrivalName == "drift" {
		req.Campaign.Workload.DriftPath = strings.Split(*driftPath, ",")
	}
	if err := req.Campaign.Validate(); err != nil {
		return usageError{err}
	}
	if *flipSpec != "" {
		f, err := parseFlip(*flipSpec)
		if err != nil {
			return err
		}
		req.Flip = f
	}
	rep, err := zeppelin.RunReplay(context.Background(), req)
	if err != nil {
		return err
	}
	if jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	rep.WriteText(w)
	return nil
}

// ---------------------------------------------------------------------
// campaign subcommand
// ---------------------------------------------------------------------

// campaignCmd runs the streaming campaign comparison through the public
// API: the paper's four methods over one arrival/policy/faults cell,
// seed-averaged, rendered as the row table plus Zeppelin's seed-0
// timeline (or the JSON campaign artifact).
func campaignCmd(w io.Writer, args []string, seeds, workers int, jsonOut bool) error {
	fs := flag.NewFlagSet("campaign", flag.ExitOnError)
	iters := fs.Int("iters", 50, "campaign iterations; must be >= 1")
	arrivalName := fs.String("arrival", "steady", "arrival process: steady|poisson|bursty|drift|replay")
	datasetName := fs.String("dataset", "arxiv", "base dataset for steady/poisson/bursty/replay arrivals")
	driftPath := fs.String("drift", "arxiv,github,prolong64k", "comma-separated dataset waypoints for -arrival drift")
	policyName := fs.String("policy", "threshold", "replan policy: always|never|threshold|periodic")
	threshold := fs.Float64("threshold", zeppelin.DefaultThreshold, "imbalance ratio for -policy threshold")
	every := fs.Int("every", 10, "replan cadence for -policy periodic")
	replanCost := fs.Float64("replan-cost", zeppelin.DefaultReplanCostSec,
		"seconds charged per replan; must be >= 0 (0 selects the default)")
	capacity := fs.Float64("capacity", 0,
		"admission capacity factor (per-rank ceiling = capacity × tokens-per-gpu × TP); 0 selects the default (1.25)")
	faultsSpec := fs.String("faults", "none",
		"fault scenario: none|straggler|nic|failstop|shrink, optionally parameterized as name:key=val,...")
	autoscaleSpec := fs.String("autoscale", "",
		"closed-loop autoscaler: \"on\" or key=val,... (min|max|up-util|down-util|step|cooldown); empty disables")
	incremental := fs.Bool("incremental", false,
		"plan Zeppelin through the incremental planner (exact mode: cached plans are bit-identical, so results match the stateless planner)")
	serveSpec := fs.String("serve", "",
		"serving scenario (clients=N,arrival=...,rate=...,slo=...); replaces the arrival/policy/faults cell with a request stream")
	subJSON := fs.Bool("json", false, "emit the campaign artifact as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return usageErrorf("campaign: unexpected arguments %q", fs.Args())
	}
	if *iters < 1 {
		return usageErrorf("campaign: -iters must be >= 1, got %d", *iters)
	}
	if *replanCost < 0 {
		return usageErrorf("campaign: -replan-cost must be >= 0, got %v", *replanCost)
	}
	jsonOut = jsonOut || *subJSON

	if *serveSpec != "" || hasFlag(fs, "serve") {
		// Serve mode: the serve spec owns the arrival process and there is
		// no replanning controller — reject any training-cell flag the
		// user explicitly set alongside it.
		for _, conflict := range []string{"arrival", "dataset", "drift", "policy", "threshold", "every", "faults", "autoscale"} {
			if hasFlag(fs, conflict) {
				return usageErrorf("campaign: -%s conflicts with -serve (the serve spec owns the request stream)", conflict)
			}
		}
		spec, err := zeppelin.ParseServeSpec(*serveSpec)
		if err != nil {
			return usageError{err}
		}
		req := zeppelin.CampaignRequest{
			Cluster:       zeppelin.ClusterSpec{Capacity: *capacity},
			Iters:         *iters,
			ReplanCostSec: *replanCost,
			Incremental:   *incremental,
			Serve:         spec,
		}
		if err := req.Validate(); err != nil {
			return usageError{err}
		}
		cmp, err := zeppelin.CompareCampaigns(context.Background(), req, seeds, workers)
		if err != nil {
			return err
		}
		if jsonOut {
			return cmp.WriteJSON(w)
		}
		return cmp.WriteText(w)
	}

	req := zeppelin.CampaignRequest{
		Cluster: zeppelin.ClusterSpec{Capacity: *capacity},
		Workload: zeppelin.WorkloadSpec{
			Dataset: *datasetName,
			Arrival: *arrivalName,
		},
		Policy: zeppelin.PolicySpec{
			Name:      *policyName,
			Threshold: *threshold,
			Every:     *every,
		},
		Faults:        *faultsSpec,
		Iters:         *iters,
		ReplanCostSec: *replanCost,
		Incremental:   *incremental,
	}
	if *arrivalName == "drift" {
		req.Workload.DriftPath = strings.Split(*driftPath, ",")
	}
	if *autoscaleSpec != "" {
		as, err := zeppelin.ParseAutoscaleSpec(*autoscaleSpec)
		if err != nil {
			return usageError{err}
		}
		req.Autoscale = as
	}
	// Resolution failures — unknown datasets, arrivals, policies, fault
	// scenarios, out-of-range parameters — are flag mistakes: usage.
	if err := req.Validate(); err != nil {
		return usageError{err}
	}
	cmp, err := zeppelin.CompareCampaigns(context.Background(), req, seeds, workers)
	if err != nil {
		return err
	}
	if jsonOut {
		return cmp.WriteJSON(w)
	}
	return cmp.WriteText(w)
}

// hasFlag reports whether a flag was explicitly set on the command line.
func hasFlag(fs *flag.FlagSet, name string) bool {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// ---------------------------------------------------------------------
// serve subcommand
// ---------------------------------------------------------------------

// serveCmd compares the routing objectives (balance vs KV-affinity) on
// one serving scenario through the public API, seed-averaged with
// per-SLO-class tables. -dump-trace records the scenario's deterministic
// timeline as NDJSON (trace-replay v2) and exits; -trace replays such a
// file instead of generating the timeline.
func serveCmd(w io.Writer, args []string, seeds, workers int, jsonOut bool) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	spec := fs.String("serve", "",
		"serving scenario (clients=N,arrival=...,rate=...,slo=...); empty selects every default")
	iters := fs.Int("iters", 10000, "tick horizon; the stream ends early when the timeline drains")
	seed := fs.Int64("seed", 0, "timeline seed for -dump-trace; 0 selects the default")
	tracePath := fs.String("trace", "", "replay a recorded NDJSON request trace instead of generating the timeline")
	dumpPath := fs.String("dump-trace", "", "write the scenario's deterministic timeline as NDJSON and exit")
	capacity := fs.Float64("capacity", 0,
		"admission capacity factor (per-rank ceiling = capacity × tokens-per-gpu × TP); 0 selects the default (1.25)")
	subJSON := fs.Bool("json", false, "emit the serving comparison as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return usageErrorf("serve: unexpected arguments %q", fs.Args())
	}
	if *iters < 1 {
		return usageErrorf("serve: -iters must be >= 1, got %d", *iters)
	}
	jsonOut = jsonOut || *subJSON

	wireSpec, err := zeppelin.ParseServeSpec(*spec)
	if err != nil {
		return usageError{err}
	}
	if *dumpPath != "" {
		events, err := zeppelin.GenerateServeTimeline(wireSpec, *seed)
		if err != nil {
			return usageError{err}
		}
		f, err := os.Create(*dumpPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := zeppelin.WriteServeTrace(f, events); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %d requests to %s\n", len(events), *dumpPath)
		return f.Close()
	}
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			return usageError{err}
		}
		events, err := zeppelin.ReadServeTrace(f)
		f.Close()
		if err != nil {
			return usageError{err}
		}
		wireSpec.Trace = events
		wireSpec.TraceName = *tracePath
	}
	req := zeppelin.CampaignRequest{
		Cluster: zeppelin.ClusterSpec{Capacity: *capacity},
		Iters:   *iters,
		Serve:   wireSpec,
	}
	if err := req.Validate(); err != nil {
		return usageError{err}
	}
	cmp, err := zeppelin.CompareServeRoutes(context.Background(), req, seeds, workers)
	if err != nil {
		return err
	}
	if jsonOut {
		return cmp.WriteJSON(w)
	}
	return cmp.WriteText(w)
}

// ---------------------------------------------------------------------
// tune subcommand
// ---------------------------------------------------------------------

// parseTuneWeights resolves "-weights goodput,p99,migration,util" into
// the wire weights; only the ratios matter.
func parseTuneWeights(s string) (*zeppelin.TuneWeights, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return nil, usageErrorf("tune: -weights wants 4 comma-separated values (goodput,p99,migration,utilization), got %q", s)
	}
	vals := make([]float64, 4)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, usageErrorf("tune: bad -weights value %q", p)
		}
		vals[i] = v
	}
	return &zeppelin.TuneWeights{
		Goodput: vals[0], P99: vals[1], Migration: vals[2], Utilization: vals[3],
	}, nil
}

// tuneCmd runs the closed-loop policy search through the public API:
// sweep the declared space over full campaigns of the scenario (default
// the fig13 drifting mixture, where replan policy actually matters) and
// report the fittest configuration as a ready-to-paste flag set. The
// report is bit-identical at every -workers count; -seeds averages each
// candidate over that many campaign seeds.
func tuneCmd(w io.Writer, args []string, seeds, workers int, jsonOut bool) error {
	fs := flag.NewFlagSet("tune", flag.ExitOnError)
	space := fs.String("space", "", "search-space grammar: key=value dims, `a|b` sets, `lo:hi` intervals (empty selects the default space)")
	budget := fs.Int("budget", zeppelin.DefaultTuneBudget, "candidate-evaluation budget; must be >= 1")
	iters := fs.Int("iters", zeppelin.DefaultTuneIters, "per-evaluation campaign horizon; must be >= 1")
	weightsSpec := fs.String("weights", "", "fitness weights as goodput,p99,migration,utilization (empty selects 0.4,0.2,0.2,0.2)")
	searchSeed := fs.Int64("search-seed", 0, "mutation-stream seed; 0 selects 1")
	arrivalName := fs.String("arrival", "drift", "arrival process: steady|poisson|bursty|drift|replay")
	datasetName := fs.String("dataset", "arxiv", "base dataset for steady/poisson/bursty/replay arrivals")
	driftPath := fs.String("drift", "arxiv,github,prolong64k", "comma-separated dataset waypoints for -arrival drift")
	faultsSpec := fs.String("faults", "none",
		"fault scenario the evaluations run under: none|straggler|nic|failstop|shrink[:k=v,...]")
	subJSON := fs.Bool("json", false, "emit the tune report as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return usageErrorf("tune: unexpected arguments %q", fs.Args())
	}
	if *budget < 1 {
		return usageErrorf("tune: -budget must be >= 1, got %d", *budget)
	}
	if *iters < 1 {
		return usageErrorf("tune: -iters must be >= 1, got %d", *iters)
	}
	jsonOut = jsonOut || *subJSON

	req := zeppelin.TuneRequest{
		Workload: zeppelin.WorkloadSpec{
			Dataset: *datasetName,
			Arrival: *arrivalName,
		},
		Faults:     *faultsSpec,
		Space:      *space,
		Budget:     *budget,
		Iters:      *iters,
		Seeds:      seeds,
		SearchSeed: *searchSeed,
		Workers:    workers,
	}
	if *arrivalName == "drift" {
		req.Workload.DriftPath = strings.Split(*driftPath, ",")
	}
	if *weightsSpec != "" {
		tw, err := parseTuneWeights(*weightsSpec)
		if err != nil {
			return err
		}
		req.Weights = tw
	}
	if err := req.Validate(); err != nil {
		return usageError{err}
	}
	rep, err := zeppelin.RunTune(context.Background(), req)
	if err != nil {
		return err
	}
	if jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	rep.WriteText(w)
	return nil
}
