// Command zeppelin regenerates the paper's evaluation tables and figures
// on the simulated cluster substrate, and runs streaming long-horizon
// campaigns on top of the same cells.
//
// Usage:
//
//	zeppelin [-seeds N] [-workers N] [-json] <experiment>
//	zeppelin [-seeds N] [-workers N] campaign [-iters N] [-arrival P] [-drift D] [-policy P] [-json] [...]
//	zeppelin bench [-ranks R1,R2] [-iters N] [-json]
//
// where <experiment> is one of: fig1, table2, fig3, fig5, fig8, fig9,
// fig10, fig11, fig12, fig13, fig14, fig15, table3, all.
//
// -workers bounds the concurrent simulation pool (default GOMAXPROCS);
// results are bit-identical for every worker count. -json emits the
// experiment's structured results as a JSON artifact instead of the
// paper-style text rendering.
//
// The campaign subcommand simulates a multi-iteration training stream:
// an arrival process (steady, poisson, bursty, drifting mixture, or
// deterministic trace replay) feeds batches to every compared method
// while a replanning controller decides when to re-run the partitioner.
// A -faults scenario (straggler, NIC degradation, fail-stop node loss,
// elastic shrink/grow) runs the whole stream under a deterministic
// fault schedule, with fault/recovery markers in the per-iteration
// records and the rendered timeline.
//
// The bench subcommand measures the planner fast path in-process (the
// fig15 machinery: full solve vs incremental re-planning over a churning
// stream) and emits results in the shared benchfmt JSON schema — the
// same shape as the CI bench job's BENCH_*.json artifact, so the same
// tooling reads both (the measurements themselves differ: CI aggregates
// go-test samples, bench reports per-rank-count p50s).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"zeppelin/internal/benchfmt"
	"zeppelin/internal/campaign"
	"zeppelin/internal/experiments"
	"zeppelin/internal/faults"
	"zeppelin/internal/partition"
	"zeppelin/internal/runner"
	"zeppelin/internal/trace"
	"zeppelin/internal/workload"
	"zeppelin/internal/zeppelin"
)

// usageError marks a flag-validation failure: main prints usage and
// exits 2, the convention every experiment flag already follows.
type usageError struct{ err error }

func (e usageError) Error() string { return e.err.Error() }
func (e usageError) Unwrap() error { return e.err }

func usageErrorf(format string, args ...any) error {
	return usageError{fmt.Errorf(format, args...)}
}

func main() {
	seeds := flag.Int("seeds", 3, "independently sampled batches (or campaigns) averaged per cell; must be >= 1")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent simulation workers; must be >= 1")
	jsonOut := flag.Bool("json", false, "emit structured results as JSON instead of text")
	flag.Usage = usage
	flag.Parse()
	if *seeds < 1 {
		fmt.Fprintf(os.Stderr, "zeppelin: -seeds must be >= 1, got %d\n", *seeds)
		flag.Usage()
		os.Exit(2)
	}
	if *workers < 1 {
		fmt.Fprintf(os.Stderr, "zeppelin: -workers must be >= 1, got %d\n", *workers)
		flag.Usage()
		os.Exit(2)
	}
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if args[0] == "campaign" {
		if err := campaignCmd(os.Stdout, args[1:], *seeds, *workers, *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "zeppelin:", err)
			var ue usageError
			if errors.As(err, &ue) {
				flag.Usage()
				os.Exit(2)
			}
			os.Exit(1)
		}
		return
	}
	if args[0] == "bench" {
		if err := benchCmd(os.Stdout, args[1:], *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "zeppelin:", err)
			var ue usageError
			if errors.As(err, &ue) {
				flag.Usage()
				os.Exit(2)
			}
			os.Exit(1)
		}
		return
	}
	if len(args) != 1 {
		flag.Usage()
		os.Exit(2)
	}
	name := args[0]
	if !knownExperiment(name) {
		fmt.Fprintf(os.Stderr, "zeppelin: unknown experiment %q\n", name)
		flag.Usage()
		os.Exit(2)
	}
	// One engine serves every figure of the invocation, so cells shared
	// between figures (`all` has several) simulate once.
	opts := experiments.Options{
		Seeds:   *seeds,
		Workers: *workers,
		Engine:  runner.New(runner.Options{Workers: *workers}),
	}
	var err error
	if *jsonOut {
		err = dispatchJSON(os.Stdout, name, opts)
	} else {
		err = dispatch(os.Stdout, name, opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "zeppelin:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: zeppelin [-seeds N] [-workers N] [-json] <experiment>
       zeppelin [-seeds N] [-workers N] campaign [flags]
       zeppelin bench [-ranks R1,R2] [-iters N] [-json]

experiments: %s
campaign flags: -iters N  -arrival steady|poisson|bursty|drift|replay
                -dataset NAME  -drift a,b,c  -policy always|never|threshold|periodic
                -threshold X  -every N  -replan-cost SECONDS (>= 0)
                -faults none|straggler|nic|failstop|shrink[:k=v,...]
                -incremental (Zeppelin plans through the incremental planner)  -json
bench flags:    -ranks 64,256 (world sizes, multiples of 8)  -iters N
                -json (benchfmt artifact, the BENCH_*.json schema)
`, strings.Join(append(append([]string{}, experimentOrder...), "all"), " "))
	flag.PrintDefaults()
}

// experimentOrder is the `all` sequence, in paper order; fig13 (the
// streaming campaign), fig14 (fault-and-elasticity campaigns), and fig15
// (the planner fast-path scaling sweep) extend the evaluation past the
// paper.
var experimentOrder = []string{"fig1", "table2", "fig3", "fig5", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "table3"}

func knownExperiment(name string) bool {
	if name == "all" {
		return true
	}
	for _, k := range experimentOrder {
		if k == name {
			return true
		}
	}
	return false
}

func dispatch(w io.Writer, name string, opts experiments.Options) error {
	runs := map[string]func(io.Writer, experiments.Options) error{
		"fig1":   func(w io.Writer, _ experiments.Options) error { experiments.WriteFig1(w); return nil },
		"table2": func(w io.Writer, _ experiments.Options) error { experiments.WriteTable2(w); return nil },
		"fig3":   func(w io.Writer, opts experiments.Options) error { return experiments.WriteFig3(w, opts) },
		"fig5":   func(w io.Writer, _ experiments.Options) error { experiments.WriteFig5(w); return nil },
		"fig8":   experiments.WriteFig8,
		"fig9":   experiments.WriteFig9,
		"fig10":  experiments.WriteFig10,
		"fig11":  experiments.WriteFig11,
		"fig12":  func(w io.Writer, opts experiments.Options) error { return experiments.WriteFig12(w, opts) },
		"fig13":  experiments.WriteFig13,
		"fig14":  experiments.WriteFig14,
		"fig15":  experiments.WriteFig15,
		"table3": func(w io.Writer, opts experiments.Options) error { return writeTable3(w, opts) },
	}
	if name == "all" {
		for _, key := range experimentOrder {
			fmt.Fprintf(w, "\n================ %s ================\n", key)
			if err := runs[key](w, opts); err != nil {
				return err
			}
		}
		return nil
	}
	run, ok := runs[name]
	if !ok {
		return fmt.Errorf("unknown experiment %q", name)
	}
	return run(w, opts)
}

// writeTable3 is WriteTable3 with the invocation's engine plumbed in.
func writeTable3(w io.Writer, opts experiments.Options) error {
	cols, err := experiments.Table3Opts(opts)
	if err != nil {
		return err
	}
	return experiments.RenderTable3(w, cols)
}

// result computes one experiment's structured result for JSON emission.
func result(name string, opts experiments.Options) (any, error) {
	switch name {
	case "fig1":
		return experiments.Fig1(), nil
	case "table2":
		return workload.Eval, nil
	case "fig3":
		return experiments.Fig3All(opts)
	case "fig5":
		return experiments.Fig5(), nil
	case "fig8":
		return experiments.Fig8(opts)
	case "fig9":
		return experiments.Fig9(opts)
	case "fig10":
		return experiments.Fig10(opts)
	case "fig11":
		return experiments.Fig11(opts)
	case "fig12":
		return experiments.Fig12Traces(opts)
	case "fig13":
		return experiments.Fig13(opts)
	case "fig14":
		return experiments.Fig14(opts)
	case "fig15":
		return experiments.Fig15(opts)
	case "table3":
		return experiments.Table3Opts(opts)
	}
	return nil, fmt.Errorf("unknown experiment %q", name)
}

func dispatchJSON(w io.Writer, name string, opts experiments.Options) error {
	var payload any
	if name == "all" {
		// An ordered array, not a map: encoding/json sorts map keys, which
		// would emit fig10 before fig3 and defeat the paper ordering.
		type namedResult struct {
			Name   string `json:"name"`
			Result any    `json:"result"`
		}
		all := make([]namedResult, 0, len(experimentOrder))
		for _, key := range experimentOrder {
			r, err := result(key, opts)
			if err != nil {
				return err
			}
			all = append(all, namedResult{Name: key, Result: r})
		}
		payload = all
	} else {
		r, err := result(name, opts)
		if err != nil {
			return err
		}
		payload = r
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(payload)
}

// ---------------------------------------------------------------------
// bench subcommand
// ---------------------------------------------------------------------

// benchCmd measures the planner fast path in-process and emits results in
// the shared benchfmt schema — the same JSON shape cmd/benchgate distills
// from `go test -bench` output in CI, so one set of tooling reads both.
// (The entries differ by design: bench names carry a /ranks=N suffix and
// report per-cell p50s, while the CI artifact aggregates go-test
// samples.) Text mode prints go-test-style benchmark lines, which
// benchgate can also parse.
func benchCmd(w io.Writer, args []string, jsonOut bool) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	ranksFlag := fs.String("ranks", "64,256", "comma-separated world sizes (ranks, multiples of 8)")
	iters := fs.Int("iters", experiments.Fig15Iters, "planning stream length per cell; must be >= 2")
	subJSON := fs.Bool("json", false, "emit the benchfmt artifact as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return usageErrorf("bench: unexpected arguments %q", fs.Args())
	}
	if *iters < 2 {
		return usageErrorf("bench: -iters must be >= 2, got %d", *iters)
	}
	var ranks []int
	for _, part := range strings.Split(*ranksFlag, ",") {
		r, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || r <= 0 {
			return usageErrorf("bench: bad ranks value %q", part)
		}
		ranks = append(ranks, r)
	}
	jsonOut = jsonOut || *subJSON

	art := &benchfmt.File{Source: "zeppelin bench", Goos: runtime.GOOS, Goarch: runtime.GOARCH}
	for _, r := range ranks {
		cell, err := experiments.Fig15Bench(r, *iters)
		if err != nil {
			return usageError{err}
		}
		art.Results = append(art.Results,
			benchfmt.Result{
				Name:        fmt.Sprintf("BenchmarkFig15PlanFull/ranks=%d", r),
				Samples:     1,
				Iters:       *iters,
				NsPerOp:     cell.Full.P50Micros * 1e3,
				AllocsPerOp: cell.Full.AllocsPerPlan,
				Metrics:     map[string]float64{"p95-micros": cell.Full.P95Micros},
			},
			benchfmt.Result{
				Name:        fmt.Sprintf("BenchmarkFig15PlanIncremental/ranks=%d", r),
				Samples:     1,
				Iters:       *iters,
				NsPerOp:     cell.Incremental.P50Micros * 1e3,
				AllocsPerOp: cell.Incremental.AllocsPerPlan,
				Metrics: map[string]float64{
					"p95-micros":     cell.Incremental.P95Micros,
					"speedup-p50-x":  cell.SpeedupP50,
					"max-cost-ratio": cell.MaxCostRatio,
					"patched-plans":  float64(cell.Modes.Patched),
				},
			})
	}
	// Name-sorted like benchfmt.Parse's output, so this artifact diffs
	// directly against the CI-produced one.
	sort.Slice(art.Results, func(i, j int) bool { return art.Results[i].Name < art.Results[j].Name })
	if jsonOut {
		return art.WriteJSON(w)
	}
	for _, r := range art.Results {
		fmt.Fprintf(w, "%s \t%8d\t%12.0f ns/op\t%10.0f allocs/op\n", r.Name, r.Iters, r.NsPerOp, r.AllocsPerOp)
	}
	return nil
}

// ---------------------------------------------------------------------
// campaign subcommand
// ---------------------------------------------------------------------

// campaignArtifact is the JSON shape of one campaign invocation: the
// seed-averaged rows plus every method's full seed-0 report (records
// carry the per-iteration stream the summaries' percentiles come from).
type campaignArtifact struct {
	Iters   int                   `json:"iters"`
	Arrival string                `json:"arrival"`
	Policy  string                `json:"policy"`
	Faults  string                `json:"faults,omitempty"`
	Seeds   int                   `json:"seeds"`
	Rows    []campaign.RowSummary `json:"rows"`
	Reports []*campaign.Report    `json:"reports"`
}

func campaignCmd(w io.Writer, args []string, seeds, workers int, jsonOut bool) error {
	fs := flag.NewFlagSet("campaign", flag.ExitOnError)
	iters := fs.Int("iters", 50, "campaign iterations; must be >= 1")
	arrivalName := fs.String("arrival", "steady", "arrival process: steady|poisson|bursty|drift|replay")
	datasetName := fs.String("dataset", "arxiv", "base dataset for steady/poisson/bursty/replay arrivals")
	driftPath := fs.String("drift", "arxiv,github,prolong64k", "comma-separated dataset waypoints for -arrival drift")
	policyName := fs.String("policy", "threshold", "replan policy: always|never|threshold|periodic")
	threshold := fs.Float64("threshold", campaign.DefaultThreshold, "imbalance ratio for -policy threshold")
	every := fs.Int("every", 10, "replan cadence for -policy periodic")
	replanCost := fs.Float64("replan-cost", campaign.DefaultReplanCost,
		"seconds charged per replan; must be >= 0 (0 selects the default)")
	faultsSpec := fs.String("faults", "none",
		"fault scenario: none|straggler|nic|failstop|shrink, optionally parameterized as name:key=val,...")
	incremental := fs.Bool("incremental", false,
		"plan Zeppelin through the incremental planner (exact mode: cached plans are bit-identical, so results match the stateless planner)")
	subJSON := fs.Bool("json", false, "emit the campaign artifact as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return usageErrorf("campaign: unexpected arguments %q", fs.Args())
	}
	if *iters < 1 {
		return usageErrorf("campaign: -iters must be >= 1, got %d", *iters)
	}
	if *replanCost < 0 {
		return usageErrorf("campaign: -replan-cost must be >= 0, got %v", *replanCost)
	}
	jsonOut = jsonOut || *subJSON

	// Resolve only the inputs the selected arrival uses: -dataset for the
	// single-distribution processes, -drift for the drifting mixture.
	var base workload.Dataset
	var path []workload.Dataset
	if *arrivalName == "drift" {
		for _, name := range strings.Split(*driftPath, ",") {
			d, err := workload.ByName(strings.TrimSpace(name))
			if err != nil {
				return usageError{err}
			}
			path = append(path, d)
		}
	} else {
		var err error
		if base, err = workload.ByName(*datasetName); err != nil {
			return usageError{err}
		}
	}
	cell := experiments.CampaignCell(0)
	arrival, err := campaign.ArrivalByName(*arrivalName, base, path, *iters, cell.TotalTokens())
	if err != nil {
		return usageError{err}
	}
	policy, err := campaign.PolicyByName(*policyName, *threshold, *every)
	if err != nil {
		return usageError{err}
	}
	espec := cell.EffectiveSpec()
	schedule, err := faults.ByName(*faultsSpec, *iters, cell.Nodes, espec.GPUsPerNode)
	if err != nil {
		return usageError{err}
	}
	if err := schedule.Validate(cell.Nodes, espec.GPUsPerNode, espec.NICsPerNode); err != nil {
		return usageError{err}
	}

	// Row-major (method × seed) grid through the shared grid runner,
	// seeded exactly like fig13 so both stream identical batches.
	methods := experiments.Methods()
	var cfgs []campaign.Config
	for _, m := range methods {
		for s := 0; s < seeds; s++ {
			cell := m
			if *incremental {
				if zm, ok := m.(zeppelin.Method); ok {
					// One planner instance per grid cell: the incremental
					// method is stateful and single-owner.
					cell = zeppelin.NewIncremental(zm, partition.IncrementalConfig{})
				}
			}
			cfgs = append(cfgs, campaign.Config{
				Trainer:    experiments.CampaignCell(experiments.SeedValue(s)),
				Method:     cell,
				Iters:      *iters,
				Arrival:    arrival,
				Policy:     policy,
				ReplanCost: *replanCost,
				Faults:     schedule,
			})
		}
	}
	reports, err := campaign.RunGrid(cfgs, workers)
	if err != nil {
		return err
	}

	art := campaignArtifact{Iters: *iters, Arrival: arrival.Name(), Policy: policy.Name(), Seeds: seeds}
	if schedule != nil {
		art.Faults = schedule.Name
	}
	for m := range methods {
		cell := reports[m*seeds : (m+1)*seeds]
		art.Rows = append(art.Rows, campaign.Summarize(cell))
		art.Reports = append(art.Reports, cell[0])
	}

	if jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(art)
	}
	label := ""
	if art.Faults != "" {
		label = ", faults " + art.Faults
	}
	fmt.Fprintf(w, "streaming campaign: %d iterations, arrival %s, policy %s%s, %d seed(s)\n\n",
		art.Iters, art.Arrival, art.Policy, label, art.Seeds)
	campaign.WriteRowTable(w, art.Rows)
	// Timeline of the last method's (Zeppelin's) seed-0 campaign.
	last := art.Reports[len(art.Reports)-1]
	fmt.Fprintf(w, "\n%s campaign (seed 0):\n", last.Summary.Method)
	trace.CampaignTimeline(w, last.TraceRows(), 60, 25)
	return nil
}
