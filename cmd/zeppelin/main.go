// Command zeppelin regenerates the paper's evaluation tables and figures
// on the simulated cluster substrate, and runs streaming long-horizon
// campaigns on top of the same cells.
//
// Usage:
//
//	zeppelin [-seeds N] [-workers N] [-json] <experiment>
//	zeppelin [-seeds N] [-workers N] campaign [-iters N] [-arrival P] [-drift D] [-policy P] [-json] [...]
//
// where <experiment> is one of: fig1, table2, fig3, fig5, fig8, fig9,
// fig10, fig11, fig12, fig13, table3, all.
//
// -workers bounds the concurrent simulation pool (default GOMAXPROCS);
// results are bit-identical for every worker count. -json emits the
// experiment's structured results as a JSON artifact instead of the
// paper-style text rendering.
//
// The campaign subcommand simulates a multi-iteration training stream:
// an arrival process (steady, poisson, bursty, drifting mixture, or
// deterministic trace replay) feeds batches to every compared method
// while a replanning controller decides when to re-run the partitioner.
// A -faults scenario (straggler, NIC degradation, fail-stop node loss,
// elastic shrink/grow) runs the whole stream under a deterministic
// fault schedule, with fault/recovery markers in the per-iteration
// records and the rendered timeline.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"zeppelin/internal/campaign"
	"zeppelin/internal/experiments"
	"zeppelin/internal/faults"
	"zeppelin/internal/runner"
	"zeppelin/internal/trace"
	"zeppelin/internal/workload"
)

// usageError marks a flag-validation failure: main prints usage and
// exits 2, the convention every experiment flag already follows.
type usageError struct{ err error }

func (e usageError) Error() string { return e.err.Error() }
func (e usageError) Unwrap() error { return e.err }

func usageErrorf(format string, args ...any) error {
	return usageError{fmt.Errorf(format, args...)}
}

func main() {
	seeds := flag.Int("seeds", 3, "independently sampled batches (or campaigns) averaged per cell; must be >= 1")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent simulation workers; must be >= 1")
	jsonOut := flag.Bool("json", false, "emit structured results as JSON instead of text")
	flag.Usage = usage
	flag.Parse()
	if *seeds < 1 {
		fmt.Fprintf(os.Stderr, "zeppelin: -seeds must be >= 1, got %d\n", *seeds)
		flag.Usage()
		os.Exit(2)
	}
	if *workers < 1 {
		fmt.Fprintf(os.Stderr, "zeppelin: -workers must be >= 1, got %d\n", *workers)
		flag.Usage()
		os.Exit(2)
	}
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if args[0] == "campaign" {
		if err := campaignCmd(os.Stdout, args[1:], *seeds, *workers, *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "zeppelin:", err)
			var ue usageError
			if errors.As(err, &ue) {
				flag.Usage()
				os.Exit(2)
			}
			os.Exit(1)
		}
		return
	}
	if len(args) != 1 {
		flag.Usage()
		os.Exit(2)
	}
	name := args[0]
	if !knownExperiment(name) {
		fmt.Fprintf(os.Stderr, "zeppelin: unknown experiment %q\n", name)
		flag.Usage()
		os.Exit(2)
	}
	// One engine serves every figure of the invocation, so cells shared
	// between figures (`all` has several) simulate once.
	opts := experiments.Options{
		Seeds:   *seeds,
		Workers: *workers,
		Engine:  runner.New(runner.Options{Workers: *workers}),
	}
	var err error
	if *jsonOut {
		err = dispatchJSON(os.Stdout, name, opts)
	} else {
		err = dispatch(os.Stdout, name, opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "zeppelin:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: zeppelin [-seeds N] [-workers N] [-json] <experiment>
       zeppelin [-seeds N] [-workers N] campaign [flags]

experiments: %s
campaign flags: -iters N  -arrival steady|poisson|bursty|drift|replay
                -dataset NAME  -drift a,b,c  -policy always|never|threshold|periodic
                -threshold X  -every N  -replan-cost SECONDS (>= 0)
                -faults none|straggler|nic|failstop|shrink[:k=v,...]  -json
`, strings.Join(append(append([]string{}, experimentOrder...), "all"), " "))
	flag.PrintDefaults()
}

// experimentOrder is the `all` sequence, in paper order; fig13 (the
// streaming campaign) and fig14 (fault-and-elasticity campaigns) extend
// the evaluation past the paper.
var experimentOrder = []string{"fig1", "table2", "fig3", "fig5", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "table3"}

func knownExperiment(name string) bool {
	if name == "all" {
		return true
	}
	for _, k := range experimentOrder {
		if k == name {
			return true
		}
	}
	return false
}

func dispatch(w io.Writer, name string, opts experiments.Options) error {
	runs := map[string]func(io.Writer, experiments.Options) error{
		"fig1":   func(w io.Writer, _ experiments.Options) error { experiments.WriteFig1(w); return nil },
		"table2": func(w io.Writer, _ experiments.Options) error { experiments.WriteTable2(w); return nil },
		"fig3":   func(w io.Writer, opts experiments.Options) error { return experiments.WriteFig3(w, opts) },
		"fig5":   func(w io.Writer, _ experiments.Options) error { experiments.WriteFig5(w); return nil },
		"fig8":   experiments.WriteFig8,
		"fig9":   experiments.WriteFig9,
		"fig10":  experiments.WriteFig10,
		"fig11":  experiments.WriteFig11,
		"fig12":  func(w io.Writer, opts experiments.Options) error { return experiments.WriteFig12(w, opts) },
		"fig13":  experiments.WriteFig13,
		"fig14":  experiments.WriteFig14,
		"table3": func(w io.Writer, opts experiments.Options) error { return writeTable3(w, opts) },
	}
	if name == "all" {
		for _, key := range experimentOrder {
			fmt.Fprintf(w, "\n================ %s ================\n", key)
			if err := runs[key](w, opts); err != nil {
				return err
			}
		}
		return nil
	}
	run, ok := runs[name]
	if !ok {
		return fmt.Errorf("unknown experiment %q", name)
	}
	return run(w, opts)
}

// writeTable3 is WriteTable3 with the invocation's engine plumbed in.
func writeTable3(w io.Writer, opts experiments.Options) error {
	cols, err := experiments.Table3Opts(opts)
	if err != nil {
		return err
	}
	return experiments.RenderTable3(w, cols)
}

// result computes one experiment's structured result for JSON emission.
func result(name string, opts experiments.Options) (any, error) {
	switch name {
	case "fig1":
		return experiments.Fig1(), nil
	case "table2":
		return workload.Eval, nil
	case "fig3":
		return experiments.Fig3All(opts)
	case "fig5":
		return experiments.Fig5(), nil
	case "fig8":
		return experiments.Fig8(opts)
	case "fig9":
		return experiments.Fig9(opts)
	case "fig10":
		return experiments.Fig10(opts)
	case "fig11":
		return experiments.Fig11(opts)
	case "fig12":
		return experiments.Fig12Traces(opts)
	case "fig13":
		return experiments.Fig13(opts)
	case "fig14":
		return experiments.Fig14(opts)
	case "table3":
		return experiments.Table3Opts(opts)
	}
	return nil, fmt.Errorf("unknown experiment %q", name)
}

func dispatchJSON(w io.Writer, name string, opts experiments.Options) error {
	var payload any
	if name == "all" {
		// An ordered array, not a map: encoding/json sorts map keys, which
		// would emit fig10 before fig3 and defeat the paper ordering.
		type namedResult struct {
			Name   string `json:"name"`
			Result any    `json:"result"`
		}
		all := make([]namedResult, 0, len(experimentOrder))
		for _, key := range experimentOrder {
			r, err := result(key, opts)
			if err != nil {
				return err
			}
			all = append(all, namedResult{Name: key, Result: r})
		}
		payload = all
	} else {
		r, err := result(name, opts)
		if err != nil {
			return err
		}
		payload = r
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(payload)
}

// ---------------------------------------------------------------------
// campaign subcommand
// ---------------------------------------------------------------------

// campaignArtifact is the JSON shape of one campaign invocation: the
// seed-averaged rows plus every method's full seed-0 report (records
// carry the per-iteration stream the summaries' percentiles come from).
type campaignArtifact struct {
	Iters   int                   `json:"iters"`
	Arrival string                `json:"arrival"`
	Policy  string                `json:"policy"`
	Faults  string                `json:"faults,omitempty"`
	Seeds   int                   `json:"seeds"`
	Rows    []campaign.RowSummary `json:"rows"`
	Reports []*campaign.Report    `json:"reports"`
}

func campaignCmd(w io.Writer, args []string, seeds, workers int, jsonOut bool) error {
	fs := flag.NewFlagSet("campaign", flag.ExitOnError)
	iters := fs.Int("iters", 50, "campaign iterations; must be >= 1")
	arrivalName := fs.String("arrival", "steady", "arrival process: steady|poisson|bursty|drift|replay")
	datasetName := fs.String("dataset", "arxiv", "base dataset for steady/poisson/bursty/replay arrivals")
	driftPath := fs.String("drift", "arxiv,github,prolong64k", "comma-separated dataset waypoints for -arrival drift")
	policyName := fs.String("policy", "threshold", "replan policy: always|never|threshold|periodic")
	threshold := fs.Float64("threshold", campaign.DefaultThreshold, "imbalance ratio for -policy threshold")
	every := fs.Int("every", 10, "replan cadence for -policy periodic")
	replanCost := fs.Float64("replan-cost", campaign.DefaultReplanCost,
		"seconds charged per replan; must be >= 0 (0 selects the default)")
	faultsSpec := fs.String("faults", "none",
		"fault scenario: none|straggler|nic|failstop|shrink, optionally parameterized as name:key=val,...")
	subJSON := fs.Bool("json", false, "emit the campaign artifact as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return usageErrorf("campaign: unexpected arguments %q", fs.Args())
	}
	if *iters < 1 {
		return usageErrorf("campaign: -iters must be >= 1, got %d", *iters)
	}
	if *replanCost < 0 {
		return usageErrorf("campaign: -replan-cost must be >= 0, got %v", *replanCost)
	}
	jsonOut = jsonOut || *subJSON

	// Resolve only the inputs the selected arrival uses: -dataset for the
	// single-distribution processes, -drift for the drifting mixture.
	var base workload.Dataset
	var path []workload.Dataset
	if *arrivalName == "drift" {
		for _, name := range strings.Split(*driftPath, ",") {
			d, err := workload.ByName(strings.TrimSpace(name))
			if err != nil {
				return usageError{err}
			}
			path = append(path, d)
		}
	} else {
		var err error
		if base, err = workload.ByName(*datasetName); err != nil {
			return usageError{err}
		}
	}
	cell := experiments.CampaignCell(0)
	arrival, err := campaign.ArrivalByName(*arrivalName, base, path, *iters, cell.TotalTokens())
	if err != nil {
		return usageError{err}
	}
	policy, err := campaign.PolicyByName(*policyName, *threshold, *every)
	if err != nil {
		return usageError{err}
	}
	espec := cell.EffectiveSpec()
	schedule, err := faults.ByName(*faultsSpec, *iters, cell.Nodes, espec.GPUsPerNode)
	if err != nil {
		return usageError{err}
	}
	if err := schedule.Validate(cell.Nodes, espec.GPUsPerNode, espec.NICsPerNode); err != nil {
		return usageError{err}
	}

	// Row-major (method × seed) grid through the shared grid runner,
	// seeded exactly like fig13 so both stream identical batches.
	methods := experiments.Methods()
	var cfgs []campaign.Config
	for _, m := range methods {
		for s := 0; s < seeds; s++ {
			cfgs = append(cfgs, campaign.Config{
				Trainer:    experiments.CampaignCell(experiments.SeedValue(s)),
				Method:     m,
				Iters:      *iters,
				Arrival:    arrival,
				Policy:     policy,
				ReplanCost: *replanCost,
				Faults:     schedule,
			})
		}
	}
	reports, err := campaign.RunGrid(cfgs, workers)
	if err != nil {
		return err
	}

	art := campaignArtifact{Iters: *iters, Arrival: arrival.Name(), Policy: policy.Name(), Seeds: seeds}
	if schedule != nil {
		art.Faults = schedule.Name
	}
	for m := range methods {
		cell := reports[m*seeds : (m+1)*seeds]
		art.Rows = append(art.Rows, campaign.Summarize(cell))
		art.Reports = append(art.Reports, cell[0])
	}

	if jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(art)
	}
	label := ""
	if art.Faults != "" {
		label = ", faults " + art.Faults
	}
	fmt.Fprintf(w, "streaming campaign: %d iterations, arrival %s, policy %s%s, %d seed(s)\n\n",
		art.Iters, art.Arrival, art.Policy, label, art.Seeds)
	campaign.WriteRowTable(w, art.Rows)
	// Timeline of the last method's (Zeppelin's) seed-0 campaign.
	last := art.Reports[len(art.Reports)-1]
	fmt.Fprintf(w, "\n%s campaign (seed 0):\n", last.Summary.Method)
	trace.CampaignTimeline(w, last.TraceRows(), 60, 25)
	return nil
}
