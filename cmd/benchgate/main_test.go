package main

import (
	"regexp"
	"strings"
	"testing"
)

// TestReadInputSniffsFormat: benchgate accepts both bench text and a
// native benchfmt JSON artifact through the same -input path.
func TestReadInputSniffsFormat(t *testing.T) {
	text := "BenchmarkLoadgenPlan-8   500   4000000 ns/op\n"
	f, err := readInput(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	r := f.Get("BenchmarkLoadgenPlan")
	if r == nil || r.NsPerOp != 4e6 {
		t.Fatalf("text parse = %+v", f.Results)
	}

	jsonIn := `{"source":"zeppelin-loadgen","results":[{"name":"BenchmarkLoadgenPlan","samples":1,"iters":500,"ns_per_op":4000000}]}`
	f, err = readInput(strings.NewReader("\n " + jsonIn))
	if err != nil {
		t.Fatal(err)
	}
	r = f.Get("BenchmarkLoadgenPlan")
	if r == nil || r.NsPerOp != 4e6 || f.Source != "zeppelin-loadgen" {
		t.Fatalf("json parse = %+v", f)
	}
}

// TestGateRatio: the baseline-free same-run gate that pins
// decision-tracing overhead at ≤ threshold over the untraced run.
func TestGateRatio(t *testing.T) {
	text := "BenchmarkDecisionBaseline   30   10000000 ns/op\n" +
		"BenchmarkDecisionOverhead   30   10300000 ns/op\n"
	f, err := readInput(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	spec := "BenchmarkDecisionOverhead/BenchmarkDecisionBaseline"
	if err := gateRatio(f, spec, 0.05); err != nil {
		t.Fatalf("+3%% within a 5%% gate: %v", err)
	}
	if err := gateRatio(f, spec, 0.02); err == nil || !strings.Contains(err.Error(), "REGRESSION") {
		t.Fatalf("+3%% must breach a 2%% gate, got %v", err)
	}
	if err := gateRatio(f, "BenchmarkDecisionOverhead", 0.05); err == nil {
		t.Fatal("spec without '/' accepted")
	}
	if err := gateRatio(f, "BenchmarkDecisionOverhead/BenchmarkMissing", 0.05); err == nil ||
		!strings.Contains(err.Error(), "missing") {
		t.Fatalf("missing side must fail loudly, got %v", err)
	}
}

// TestDefaultGateCoversPlannerStack pins which benchmarks the CI bench
// job fails on: the planner fast paths and solvers, and nothing else —
// end-to-end figure benches drift with simulation changes by design and
// are tracked, not gated.
func TestDefaultGateCoversPlannerStack(t *testing.T) {
	re := regexp.MustCompile(DefaultGate)
	gated := []string{
		"BenchmarkFig15PlanFull",
		"BenchmarkFig15PlanIncremental",
		"BenchmarkPartitionerPlan",
		"BenchmarkRemapSolve",
		"BenchmarkLoadgenPlan",
	}
	for _, name := range gated {
		if !re.MatchString(name) {
			t.Fatalf("gate must cover %s", name)
		}
	}
	free := []string{
		"BenchmarkFig8EndToEnd",
		"BenchmarkFig13Campaign",
		"BenchmarkFig15ScalingSweep",
		"BenchmarkRunnerParallel",
		"BenchmarkMethodZeppelin",
		"BenchmarkLoadgenCampaignEvents",
	}
	for _, name := range free {
		if re.MatchString(name) {
			t.Fatalf("gate must not cover %s", name)
		}
	}
}
