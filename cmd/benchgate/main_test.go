package main

import (
	"regexp"
	"testing"
)

// TestDefaultGateCoversPlannerStack pins which benchmarks the CI bench
// job fails on: the planner fast paths and solvers, and nothing else —
// end-to-end figure benches drift with simulation changes by design and
// are tracked, not gated.
func TestDefaultGateCoversPlannerStack(t *testing.T) {
	re := regexp.MustCompile(DefaultGate)
	gated := []string{
		"BenchmarkFig15PlanFull",
		"BenchmarkFig15PlanIncremental",
		"BenchmarkPartitionerPlan",
		"BenchmarkRemapSolve",
	}
	for _, name := range gated {
		if !re.MatchString(name) {
			t.Fatalf("gate must cover %s", name)
		}
	}
	free := []string{
		"BenchmarkFig8EndToEnd",
		"BenchmarkFig13Campaign",
		"BenchmarkFig15ScalingSweep",
		"BenchmarkRunnerParallel",
		"BenchmarkMethodZeppelin",
	}
	for _, name := range free {
		if re.MatchString(name) {
			t.Fatalf("gate must not cover %s", name)
		}
	}
}
