package main

import (
	"errors"
	"regexp"
	"strings"
	"testing"
)

// TestReadInputSniffsFormat: benchgate accepts both bench text and a
// native benchfmt JSON artifact through the same -input path.
func TestReadInputSniffsFormat(t *testing.T) {
	text := "BenchmarkLoadgenPlan-8   500   4000000 ns/op\n"
	f, err := readInput(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	r := f.Get("BenchmarkLoadgenPlan")
	if r == nil || r.NsPerOp != 4e6 {
		t.Fatalf("text parse = %+v", f.Results)
	}

	jsonIn := `{"source":"zeppelin-loadgen","results":[{"name":"BenchmarkLoadgenPlan","samples":1,"iters":500,"ns_per_op":4000000}]}`
	f, err = readInput(strings.NewReader("\n " + jsonIn))
	if err != nil {
		t.Fatal(err)
	}
	r = f.Get("BenchmarkLoadgenPlan")
	if r == nil || r.NsPerOp != 4e6 || f.Source != "zeppelin-loadgen" {
		t.Fatalf("json parse = %+v", f)
	}
}

// TestGateRatio: the baseline-free same-run gate that pins
// decision-tracing overhead at ≤ threshold over the untraced run.
func TestGateRatio(t *testing.T) {
	text := "BenchmarkDecisionBaseline   30   10000000 ns/op\n" +
		"BenchmarkDecisionOverhead   30   10300000 ns/op\n"
	f, err := readInput(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	spec := "BenchmarkDecisionOverhead/BenchmarkDecisionBaseline"
	if err := gateRatio(f, spec, 0.05); err != nil {
		t.Fatalf("+3%% within a 5%% gate: %v", err)
	}
	err = gateRatio(f, spec, 0.02)
	if err == nil || !strings.Contains(err.Error(), "REGRESSION") {
		t.Fatalf("+3%% must breach a 2%% gate, got %v", err)
	}
	// A regression is a result, not a usage error: it must exit 1, not 2.
	if errors.Is(err, errRatioUsage) {
		t.Fatalf("regression misclassified as a usage error: %v", err)
	}
	if err := gateRatio(f, "BenchmarkDecisionOverhead", 0.05); err == nil || !errors.Is(err, errRatioUsage) {
		t.Fatalf("spec without '/' must be a usage error, got %v", err)
	}
	if err := gateRatio(f, "BenchmarkDecisionOverhead/BenchmarkMissing", 0.05); err == nil ||
		!strings.Contains(err.Error(), "missing") || !errors.Is(err, errRatioUsage) {
		t.Fatalf("missing side must fail loudly as a usage error, got %v", err)
	}
}

// TestGateRatioZeroDenominator is the regression test for the silent
// Inf/NaN gate: a denominator with no ns/op sample must produce a clear
// division-by-zero diagnostic classified as a usage error (exit 2),
// never a ratio that passes or a bare exit-1 regression.
func TestGateRatioZeroDenominator(t *testing.T) {
	// A JSON artifact, not bench text: the text parser never emits a
	// 0-ns/op result, but artifact producers (zeppelin-loadgen, zeppelin
	// bench -json) can — exactly the input that used to divide by zero.
	jsonIn := `{"results":[` +
		`{"name":"BenchmarkDecisionBaseline","samples":1,"iters":30,"ns_per_op":0},` +
		`{"name":"BenchmarkDecisionOverhead","samples":1,"iters":30,"ns_per_op":10300000}]}`
	f, err := readInput(strings.NewReader(jsonIn))
	if err != nil {
		t.Fatal(err)
	}
	spec := "BenchmarkDecisionOverhead/BenchmarkDecisionBaseline"
	err = gateRatio(f, spec, 0.05)
	if err == nil {
		t.Fatal("zero denominator silently passed the ratio gate")
	}
	if !errors.Is(err, errRatioUsage) {
		t.Fatalf("zero denominator must classify as a usage error, got %v", err)
	}
	if !strings.Contains(err.Error(), "divide by zero") {
		t.Fatalf("diagnostic must name the division by zero, got %v", err)
	}
	// Zero numerator: also unusable, also a usage error.
	flipped := "BenchmarkDecisionBaseline/BenchmarkDecisionOverhead"
	if err := gateRatio(f, flipped, 0.05); err == nil || !errors.Is(err, errRatioUsage) {
		t.Fatalf("zero numerator must be a usage error, got %v", err)
	}
}

// TestDefaultGateCoversPlannerStack pins which benchmarks the CI bench
// job fails on: the planner fast paths and solvers, and nothing else —
// end-to-end figure benches drift with simulation changes by design and
// are tracked, not gated.
func TestDefaultGateCoversPlannerStack(t *testing.T) {
	re := regexp.MustCompile(DefaultGate)
	gated := []string{
		"BenchmarkFig15PlanFull",
		"BenchmarkFig15PlanIncremental",
		"BenchmarkFig15PlanIncrementalReuse",
		"BenchmarkFig15ParallelSolve/solve-workers=4",
		"BenchmarkFig15ParallelSolve/sessions",
		"BenchmarkPartitionerPlan",
		"BenchmarkRemapSolve",
		"BenchmarkLoadgenPlan",
	}
	for _, name := range gated {
		if !re.MatchString(name) {
			t.Fatalf("gate must cover %s", name)
		}
	}
	free := []string{
		"BenchmarkFig8EndToEnd",
		"BenchmarkFig13Campaign",
		"BenchmarkFig15ScalingSweep",
		"BenchmarkRunnerParallel",
		"BenchmarkMethodZeppelin",
		"BenchmarkLoadgenCampaignEvents",
	}
	for _, name := range free {
		if re.MatchString(name) {
			t.Fatalf("gate must not cover %s", name)
		}
	}
}
