// Command benchgate is the benchmark-regression gate of the CI pipeline.
// It parses `go test -bench` text output into the shared benchfmt JSON
// schema, optionally writes it as an artifact (the BENCH_pr8.json the CI
// bench job uploads), and compares planner benchmarks against a
// checked-in baseline — exiting 1 when any gated benchmark's ns/op grew
// beyond the threshold, so planning-latency regressions fail the PR
// instead of landing silently.
//
// Usage:
//
//	go test -run XXX -bench . -benchtime 3x -benchmem -count 5 . | \
//	    benchgate -emit BENCH_pr8.json -baseline BENCH_baseline.json
//
//	benchgate -input bench.txt -emit BENCH_pr8.json               # parse only
//	benchgate -input bench.txt -baseline BENCH_baseline.json -update
//
// -input accepts either `go test -bench` text or an already-distilled
// benchfmt JSON artifact (zeppelin-loadgen -bench, `zeppelin bench
// -json`), sniffed automatically. The default gate covers the planner
// stack (Fig15 plan paths, the partitioner, the remap solver) plus the
// loadgen service-throughput headline; -gate swaps in any regexp. Benchmarks
// missing from either side are reported and skipped, never failed, so
// adding or retiring a benchmark cannot brick CI — refresh the baseline
// with -update (or locally via the README recipe) to re-cover them.
// Aggregation across -count samples takes the minimum ns/op, the
// least-noise statistic for threshold gating.
//
// -ratio 'A/B' gates two benchmarks from the SAME run against each
// other instead of against a checked-in baseline: fail when A's ns/op
// exceeds B's by more than the threshold. Because both sides come from
// one process on one machine, the gate is hardware-independent — it is
// how CI pins decision-tracing overhead (BenchmarkDecisionOverhead /
// BenchmarkDecisionBaseline ≤ 1.05) without a stored artifact:
//
//	go test -run XXX -bench 'Decision(Baseline|Overhead)' -count 5 . | \
//	    benchgate -ratio 'BenchmarkDecisionOverhead/BenchmarkDecisionBaseline' -threshold 0.05
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strings"
	"unicode"

	"zeppelin/internal/benchfmt"
)

// DefaultGate selects the benchmarks the pipeline fails on: the
// planner stack plus zeppelin-loadgen's service-throughput headline
// (BenchmarkLoadgenPlan encodes plans/sec as ns/plan).
const DefaultGate = `^Benchmark(Fig15Plan|Fig15ParallelSolve|PartitionerPlan|RemapSolve|LoadgenPlan)`

func main() {
	input := flag.String("input", "-", `bench output to parse ("-" = stdin)`)
	emit := flag.String("emit", "", "write the parsed artifact (benchfmt JSON) to this file")
	baseline := flag.String("baseline", "", "baseline artifact to gate against (skip gating when empty)")
	threshold := flag.Float64("threshold", 0.15, "allowed ns/op growth fraction before failing (0.15 = +15%)")
	gate := flag.String("gate", DefaultGate, "regexp of benchmark names the gate applies to")
	ratio := flag.String("ratio", "", "gate benchmark A against B from the same run, as 'A/B' (baseline-free)")
	update := flag.Bool("update", false, "rewrite -baseline from the current input instead of gating")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "benchgate: unexpected arguments %q\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}
	if *threshold <= 0 {
		fmt.Fprintf(os.Stderr, "benchgate: -threshold must be > 0, got %v\n", *threshold)
		os.Exit(2)
	}
	gateRe, err := regexp.Compile(*gate)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: bad -gate: %v\n", err)
		os.Exit(2)
	}

	var in io.Reader = os.Stdin
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	cur, err := readInput(in)
	if err != nil {
		fatal(err)
	}
	if len(cur.Results) == 0 {
		fatal(fmt.Errorf("no benchmark results found in %s", *input))
	}
	if *emit != "" {
		if err := writeArtifact(*emit, cur); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "benchgate: wrote %d results to %s\n", len(cur.Results), *emit)
	}
	if *ratio != "" {
		if err := gateRatio(cur, *ratio, *threshold); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			if errors.Is(err, errRatioUsage) {
				// The invocation is wrong (missing side, zero
				// denominator), not the code under test: exit 2 like
				// every other usage error, so CI can tell a broken gate
				// from a real regression.
				os.Exit(2)
			}
			os.Exit(1)
		}
	}
	if *baseline == "" {
		return
	}
	if *update {
		if err := writeArtifact(*baseline, cur); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "benchgate: refreshed baseline %s (%d results)\n", *baseline, len(cur.Results))
		return
	}

	bf, err := os.Open(*baseline)
	if err != nil {
		fatal(err)
	}
	base, err := benchfmt.ReadFile(bf)
	bf.Close()
	if err != nil {
		fatal(err)
	}
	regressions, skipped := benchfmt.Compare(base, cur, gateRe, *threshold)
	for _, s := range skipped {
		fmt.Fprintf(os.Stderr, "benchgate: skipped (no pairable baseline): %s\n", s)
	}
	gated := 0
	for _, r := range cur.Results {
		if gateRe.MatchString(r.Name) {
			gated++
		}
	}
	if gated == 0 {
		fatal(fmt.Errorf("gate %q matched no benchmarks in current results", *gate))
	}
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintf(os.Stderr, "benchgate: REGRESSION %s\n", r)
		}
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchgate: %d gated benchmark(s) within +%.0f%% of baseline\n",
		gated, *threshold*100)
}

// errRatioUsage marks -ratio failures where the gate invocation itself
// is wrong — bad spec, a side missing from the input, or a zero-valued
// denominator that would make the ratio Inf/NaN. main exits 2 for
// these (like every other usage error) and reserves exit 1 for real
// regressions, so a misconfigured gate can never pass silently OR read
// as a performance failure.
var errRatioUsage = errors.New("ratio gate unusable")

// gateRatio enforces a same-run ratio gate: spec is "A/B", and A's
// ns/op must not exceed B's by more than the threshold fraction. Both
// benchmarks must be present in the current results — unlike baseline
// gating there is no skip path, because a missing side means the bench
// invocation itself is wrong, not that a benchmark was retired.
func gateRatio(cur *benchfmt.File, spec string, threshold float64) error {
	num, den, ok := strings.Cut(spec, "/")
	if !ok || num == "" || den == "" {
		return fmt.Errorf("bad -ratio %q: want 'BenchmarkA/BenchmarkB': %w", spec, errRatioUsage)
	}
	a, b := cur.Get(num), cur.Get(den)
	if a == nil || b == nil {
		return fmt.Errorf("-ratio %q: benchmark(s) missing from input (have %s=%v %s=%v): %w",
			spec, num, a != nil, den, b != nil, errRatioUsage)
	}
	if b.NsPerOp <= 0 {
		return fmt.Errorf("-ratio %q: denominator %s has no ns/op (%.0f) — ratio would divide by zero: %w",
			spec, den, b.NsPerOp, errRatioUsage)
	}
	if a.NsPerOp <= 0 {
		return fmt.Errorf("-ratio %q: numerator %s has no ns/op (%.0f): %w",
			spec, num, a.NsPerOp, errRatioUsage)
	}
	got := a.NsPerOp / b.NsPerOp
	if limit := 1 + threshold; got > limit {
		return fmt.Errorf("REGRESSION %s = %.3f, limit %.3f (%s %.0f ns/op vs %s %.0f ns/op)",
			spec, got, limit, num, a.NsPerOp, den, b.NsPerOp)
	}
	fmt.Fprintf(os.Stderr, "benchgate: ratio %s = %.3f within limit %.3f\n", spec, got, 1+threshold)
	return nil
}

// readInput accepts either `go test -bench` text or an already-distilled
// benchfmt JSON artifact (what zeppelin-loadgen -bench and `zeppelin
// bench -json` emit), sniffed by the leading byte — so producers that
// speak the schema natively gate without a text round-trip.
func readInput(in io.Reader) (*benchfmt.File, error) {
	raw, err := io.ReadAll(in)
	if err != nil {
		return nil, err
	}
	if trimmed := bytes.TrimLeftFunc(raw, unicode.IsSpace); len(trimmed) > 0 && trimmed[0] == '{' {
		return benchfmt.ReadFile(bytes.NewReader(trimmed))
	}
	return benchfmt.Parse(bytes.NewReader(raw))
}

func writeArtifact(path string, f *benchfmt.File) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.WriteJSON(out); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
