// Command zeppelin-trace runs one attention layer (forward + backward)
// for a chosen method and batch shape and renders the execution timeline,
// reproducing the Fig. 12 trace methodology on arbitrary configurations.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"zeppelin/internal/baselines"
	"zeppelin/internal/cluster"
	"zeppelin/internal/model"
	"zeppelin/internal/seq"
	"zeppelin/internal/trace"
	"zeppelin/internal/trainer"
	"zeppelin/internal/workload"
	"zeppelin/internal/zeppelin"
)

func main() {
	method := flag.String("method", "zeppelin", "zeppelin, tecp, tecp-routed, llamacp, hybriddp")
	modelName := flag.String("model", "3B", "model preset (3B, 7B, 13B, 30B, 8x550M)")
	clusterName := flag.String("cluster", "A", "cluster preset (A, B, C)")
	nodes := flag.Int("nodes", 2, "number of nodes")
	dataset := flag.String("dataset", "", "sample the batch from this dataset")
	lengths := flag.String("lengths", "65536", "comma-separated sequence lengths (ignored with -dataset)")
	ranks := flag.String("ranks", "0,8,12", "ranks to render")
	width := flag.Int("width", 100, "timeline width in columns")
	flag.Parse()

	if err := run(*method, *modelName, *clusterName, *nodes, *dataset, *lengths, *ranks, *width); err != nil {
		fmt.Fprintln(os.Stderr, "zeppelin-trace:", err)
		os.Exit(1)
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func pickMethod(name string) (trainer.Method, error) {
	switch name {
	case "zeppelin":
		return zeppelin.Full(), nil
	case "tecp":
		return baselines.TECP{}, nil
	case "tecp-routed":
		return baselines.TECP{Routed: true}, nil
	case "llamacp":
		return baselines.LLaMACP{}, nil
	case "hybriddp":
		return baselines.HybridDP{}, nil
	case "packing":
		return baselines.Packing{}, nil
	}
	return nil, fmt.Errorf("unknown method %q", name)
}

func run(method, modelName, clusterName string, nodes int, dataset, lengths, ranks string, width int) error {
	m, err := pickMethod(method)
	if err != nil {
		return err
	}
	mc, err := model.ByName(modelName)
	if err != nil {
		return err
	}
	spec, err := cluster.ByName(clusterName)
	if err != nil {
		return err
	}
	cfg := trainer.Config{Model: mc, Spec: spec, Nodes: nodes, Seed: 1}
	env, err := cfg.NewEnv()
	if err != nil {
		return err
	}
	var batch []seq.Sequence
	if dataset != "" {
		d, err := workload.ByName(dataset)
		if err != nil {
			return err
		}
		batch = d.Batch(cfg.TotalTokens(), rand.New(rand.NewSource(1)))
	} else {
		ls, err := parseInts(lengths)
		if err != nil {
			return err
		}
		for i, l := range ls {
			batch = append(batch, seq.Sequence{ID: i, Len: l})
		}
	}
	rs, err := parseInts(ranks)
	if err != nil {
		return err
	}
	pl, err := m.Plan(env, batch)
	if err != nil {
		return err
	}
	fwd := pl.EmitAttention(env, false)
	pl.EmitAttention(env, true, fwd)
	if _, err := env.E.Run(); err != nil {
		return err
	}
	events := trace.Collect(env.E)
	fmt.Printf("%s, %s, cluster %s x%d, %d tokens in %d sequences\n",
		m.Name(), mc.Name, spec.Name, nodes, seq.TotalLen(batch), len(batch))
	trace.Timeline(os.Stdout, events, rs, width)
	fmt.Println("\nforward statistics:")
	trace.WriteStats(os.Stdout, trace.Filter(events, "attn-fwd"))
	fmt.Println("backward statistics:")
	trace.WriteStats(os.Stdout, trace.Filter(events, "attn-bwd"))
	return nil
}
