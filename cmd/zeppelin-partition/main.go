// Command zeppelin-partition samples a batch from a dataset and prints
// the hierarchical partition plan the sequence partitioner produces:
// zone thresholds, ring groups, per-rank token and causal-pair loads, and
// the remapping transfers needed to balance the linear modules.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"zeppelin/internal/cluster"
	"zeppelin/internal/partition"
	"zeppelin/internal/remap"
	"zeppelin/internal/seq"
	"zeppelin/internal/workload"
)

func main() {
	dataset := flag.String("dataset", "arxiv", "dataset name (arxiv, github, prolong64k, ...)")
	clusterName := flag.String("cluster", "A", "cluster preset (A, B, C)")
	nodes := flag.Int("nodes", 2, "number of nodes")
	tokensPerGPU := flag.Int("tokens-per-gpu", 4096, "context budget per GPU")
	capacity := flag.Float64("capacity-factor", 1.25, "L = factor x tokens per GPU")
	seed := flag.Int64("seed", 1, "batch sampling seed")
	flag.Parse()

	if err := run(*dataset, *clusterName, *nodes, *tokensPerGPU, *capacity, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "zeppelin-partition:", err)
		os.Exit(1)
	}
}

func run(dataset, clusterName string, nodes, tokensPerGPU int, capacity float64, seed int64) error {
	d, err := workload.ByName(dataset)
	if err != nil {
		return err
	}
	spec, err := cluster.ByName(clusterName)
	if err != nil {
		return err
	}
	c, err := cluster.New(spec, nodes)
	if err != nil {
		return err
	}
	capTokens := int(capacity * float64(tokensPerGPU))
	p, err := partition.New(partition.Config{Cluster: c, CapacityTokens: capTokens})
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	batch := d.Batch(tokensPerGPU*c.World(), rng)
	res, err := p.Plan(batch)
	if err != nil {
		return err
	}
	if err := res.Plan.Validate(batch); err != nil {
		return err
	}

	fmt.Printf("dataset %s, cluster %s x%d nodes (%d GPUs), %d tokens, L=%d\n",
		d.Name, spec.Name, nodes, c.World(), seq.TotalLen(batch), capTokens)
	fmt.Printf("batch: %d sequences\n", len(batch))
	for _, s := range batch {
		fmt.Printf("  seq %3d  len %6d\n", s.ID, s.Len)
	}
	fmt.Printf("\ninter-node threshold s1 = %d; per-node intra thresholds s0 = %v\n", res.S1, res.S0)
	fmt.Printf("\nrings (%d):\n", len(res.Plan.Rings))
	for _, ring := range res.Plan.Rings {
		fmt.Printf("  seq %3d  len %6d  %-10s G=%-3d ranks %v\n",
			ring.Seq.ID, ring.Seq.Len, ring.Zone, ring.G(), ring.Ranks)
	}
	fmt.Println("\nlocal sequences:")
	for r, ls := range res.Plan.Local {
		if len(ls) == 0 {
			continue
		}
		fmt.Printf("  rank %3d:", r)
		for _, s := range ls {
			fmt.Printf(" seq%d(%d)", s.ID, s.Len)
		}
		fmt.Println()
	}
	toks := res.Plan.TokensPerRank()
	pairs := res.Plan.PairsPerRank()
	fmt.Println("\nper-rank load:")
	for r := 0; r < c.World(); r++ {
		fmt.Printf("  rank %3d: %6d tokens  %12.0f pairs\n", r, toks[r], pairs[r])
	}

	bIntra := 1 / spec.IntraBandwidth
	bInter := 1 / spec.NICBandwidth
	rp, err := remap.Solve(toks, c, bIntra, bInter)
	if err != nil {
		return err
	}
	fmt.Printf("\nremapping to token balance: %d transfers, %d inter-node tokens\n",
		len(rp.Transfers), rp.InterTokens)
	for _, tr := range rp.Transfers {
		kind := "intra"
		if !c.SameNode(tr.From, tr.To) {
			kind = "INTER"
		}
		fmt.Printf("  %s %3d -> %3d : %6d tokens\n", kind, tr.From, tr.To, tr.Tokens)
	}
	return nil
}
