// Command zeppelin-loadgen drives fleet-shaped traffic at one or more
// zeppelind replicas: a paced stream of identical POST /v1/plan
// requests plus N concurrent NDJSON campaign streams. It reports
// goodput (plans/sec), the plan latency distribution (p50/p95/p99),
// and the overload accounting (429s, errors, client-side sheds), and
// verifies the determinism contract on the way: every admitted plan
// response in a run must be byte-identical.
//
// When every replica exposes GET /metrics, the run is metrics-aware:
// the report gains the p99.9 latency tail, the fleet-wide decisions/sec
// rate (delta of zeppelind_decisions_total over the run), and each
// class's admission-bucket saturation. Targets without the endpoint
// degrade silently to the classic output.
//
// Usage:
//
//	zeppelin-loadgen [-addr URL[,URL...]] [-duration 5s] [-rps 200]
//	                 [-campaigns 4] [-iters 10] [-concurrency N]
//	                 [-model 7B] [-dataset arxiv] [-seed 42]
//	                 [-json] [-bench out.json]
//
// -addr may be repeated and/or comma-separated; requests round-robin
// across the replicas. -bench writes the benchfmt artifact (the
// BENCH_*.json schema) whose BenchmarkLoadgenPlan series encodes
// goodput as ns/plan, so cmd/benchgate gates throughput regressions in
// CI. -json prints the full report as JSON instead of the text summary.
// Exits 1 when the run saw transport/5xx errors or non-identical plan
// responses; 429s are expected overload signal, not failure.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"zeppelin/pkg/zeppelin"
)

func main() {
	var addrs []string
	flag.Func("addr", "zeppelind base URL (repeatable, comma-separated)", func(v string) error {
		for _, a := range strings.Split(v, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, strings.TrimRight(a, "/"))
			}
		}
		return nil
	})
	duration := flag.Duration("duration", 5*time.Second, "plan-traffic phase length")
	rps := flag.Float64("rps", 200, "offered POST /v1/plan rate across all replicas; 0 disables plan traffic")
	campaigns := flag.Int("campaigns", 4, "concurrent campaign streams; 0 disables campaign traffic")
	iters := flag.Int("iters", 10, "iterations per campaign stream")
	concurrency := flag.Int("concurrency", 0, "max in-flight plan requests; 0 picks 4*GOMAXPROCS")
	model := flag.String("model", "7B", "plan request model")
	dataset := flag.String("dataset", "arxiv", "plan request dataset")
	seed := flag.Int64("seed", 42, "plan request seed")
	jsonOut := flag.Bool("json", false, "print the full report as JSON instead of the text summary")
	benchOut := flag.String("bench", "", "also write the benchfmt artifact (for cmd/benchgate) to this file")
	flag.Parse()

	if len(addrs) == 0 {
		addrs = []string{"http://localhost:8080"}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	report, err := zeppelin.RunLoad(ctx, zeppelin.LoadConfig{
		Addrs:           addrs,
		Duration:        *duration,
		PlanRPS:         *rps,
		PlanConcurrency: *concurrency,
		Plan:            zeppelin.PlanRequest{Model: *model, Dataset: *dataset, Seed: *seed},
		Campaigns:       *campaigns,
		CampaignIters:   *iters,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "zeppelin-loadgen:", err)
		os.Exit(1)
	}

	if *jsonOut {
		report.WriteJSON(os.Stdout) //nolint:errcheck
	} else {
		report.WriteText(os.Stdout) //nolint:errcheck
	}
	if *benchOut != "" {
		f, err := os.Create(*benchOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "zeppelin-loadgen:", err)
			os.Exit(1)
		}
		if err := report.Benchfmt().WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, "zeppelin-loadgen:", err)
			os.Exit(1)
		}
		f.Close() //nolint:errcheck
	}

	if report.PlanErrors > 0 || report.CampaignErrors > 0 {
		fmt.Fprintf(os.Stderr, "zeppelin-loadgen: %d plan / %d campaign errors\n",
			report.PlanErrors, report.CampaignErrors)
		os.Exit(1)
	}
	if report.PlanOK > 0 && report.UniquePlanBodies != 1 {
		fmt.Fprintf(os.Stderr, "zeppelin-loadgen: %d distinct plan bodies for one request — determinism violation\n",
			report.UniquePlanBodies)
		os.Exit(1)
	}
}
