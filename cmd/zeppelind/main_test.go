package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"zeppelin/pkg/zeppelin"
)

// testConfig is the default server shape for tests: 2 workers, 1 seed,
// no admission limits, shared plan cache on.
func testConfig() serverConfig {
	return serverConfig{workers: 2, seeds: 1, planCacheEntries: zeppelin.DefaultPlanCacheEntries}
}

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(newServer(context.Background(), testConfig()))
	t.Cleanup(ts.Close)
	return ts
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
	}
	return resp
}

func TestHealthz(t *testing.T) {
	ts := testServer(t)
	var body map[string]string
	resp := getJSON(t, ts.URL+"/healthz", &body)
	if resp.StatusCode != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz = %d %v", resp.StatusCode, body)
	}
}

func TestVersionRoute(t *testing.T) {
	ts := testServer(t)
	var v zeppelin.VersionInfo
	resp := getJSON(t, ts.URL+"/v1/version", &v)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if v.APIVersion != "v1" || v.Module != "zeppelin" || !strings.HasPrefix(v.GoVersion, "go") {
		t.Fatalf("version payload = %+v", v)
	}
}

// TestUnknownV1RouteIsStructuredJSON: unknown /v1 paths return the error
// envelope, not the default text 404 page.
func TestUnknownV1RouteIsStructuredJSON(t *testing.T) {
	ts := testServer(t)
	var body zeppelin.ErrorBody
	resp := getJSON(t, ts.URL+"/v1/definitely/not/a/route", &body)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	if body.Error.Code != "not_found" || body.Error.Message == "" {
		t.Fatalf("error body = %+v", body)
	}
}

// TestWrongMethodIsStructuredJSON: a GET on the POST-only plan route
// returns the 405 envelope.
func TestWrongMethodIsStructuredJSON(t *testing.T) {
	ts := testServer(t)
	var body zeppelin.ErrorBody
	resp := getJSON(t, ts.URL+"/v1/plan", &body)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d, want 405", resp.StatusCode)
	}
	if body.Error.Code != "method_not_allowed" {
		t.Fatalf("error body = %+v", body)
	}
}

func TestPlanEndpoint(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Post(ts.URL+"/v1/plan", "application/json",
		strings.NewReader(`{"model":"7B","dataset":"arxiv","seed":42}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d: %s", resp.StatusCode, raw)
	}
	var plan zeppelin.PlanResponse
	if err := json.NewDecoder(resp.Body).Decode(&plan); err != nil {
		t.Fatal(err)
	}
	if plan.World != 16 || plan.TokensPerSec <= 0 {
		t.Fatalf("plan = %+v", plan)
	}
	sum := 0
	for _, tok := range plan.TokensPerRank {
		sum += tok
	}
	if sum != plan.Tokens {
		t.Fatalf("plan places %d of %d tokens", sum, plan.Tokens)
	}
}

// TestPlanEndpointSolveWorkers: the -solve-workers daemon flag fans the
// plan solve and surfaces on the wire as solve_mode, while the plan
// itself stays byte-identical to the serial daemon's — the property the
// CI determinism job diffs end to end.
func TestPlanEndpointSolveWorkers(t *testing.T) {
	body := `{"model":"7B","dataset":"arxiv","seed":42}`
	plan := func(cfg serverConfig) ([]byte, zeppelin.PlanResponse) {
		t.Helper()
		ts := httptest.NewServer(newServer(context.Background(), cfg))
		defer ts.Close()
		resp, err := http.Post(ts.URL+"/v1/plan", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d err = %v: %s", resp.StatusCode, err, raw)
		}
		var pr zeppelin.PlanResponse
		if err := json.Unmarshal(raw, &pr); err != nil {
			t.Fatal(err)
		}
		return raw, pr
	}
	serial := testConfig()
	serial.solveWorkers = 1
	rawSerial, prSerial := plan(serial)
	if prSerial.SolveMode != "serial" {
		t.Fatalf("solve-workers=1: solve_mode = %q, want serial", prSerial.SolveMode)
	}
	fanned := testConfig()
	fanned.solveWorkers = 4
	rawFanned, prFanned := plan(fanned)
	if prFanned.SolveMode != "parallel-4" {
		t.Fatalf("solve-workers=4: solve_mode = %q, want parallel-4", prFanned.SolveMode)
	}
	strip := func(raw []byte) []byte {
		var out []byte
		for _, line := range bytes.Split(raw, []byte("\n")) {
			if bytes.Contains(line, []byte(`"solve_mode"`)) {
				continue
			}
			out = append(out, line...)
			out = append(out, '\n')
		}
		return out
	}
	if !bytes.Equal(strip(rawSerial), strip(rawFanned)) {
		t.Fatalf("plans differ across solve-worker counts:\n%s\nvs\n%s", rawSerial, rawFanned)
	}
	// The default daemon (flag unset) keeps the historical wire shape.
	if raw, pr := plan(testConfig()); pr.SolveMode != "" || bytes.Contains(raw, []byte(`"solve_mode"`)) {
		t.Fatalf("default config leaked solve_mode: %s", raw)
	}
}

func TestPlanRejectsBadBodies(t *testing.T) {
	ts := testServer(t)
	cases := []string{
		`{"model":"900B"}`,       // unknown model
		`{"unknown_field":true}`, // schema violation
		`{"method":`,             // malformed JSON
	}
	for _, payload := range cases {
		resp, err := http.Post(ts.URL+"/v1/plan", "application/json", strings.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		var body zeppelin.ErrorBody
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusBadRequest || body.Error.Code != "bad_request" {
			t.Fatalf("payload %q: status=%d err=%v body=%+v", payload, resp.StatusCode, err, body)
		}
	}
}

func TestExperimentRouteRejectsUnknown(t *testing.T) {
	ts := testServer(t)
	var body zeppelin.ErrorBody
	resp := getJSON(t, ts.URL+"/v1/experiments/fig99", &body)
	if resp.StatusCode != http.StatusNotFound || body.Error.Code != "not_found" {
		t.Fatalf("status=%d body=%+v", resp.StatusCode, body)
	}
}

func TestExperimentRouteServesTable2(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/v1/experiments/table2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, raw)
	}
	if !bytes.Contains(raw, []byte("arxiv")) {
		t.Fatalf("table2 artifact missing datasets: %s", raw)
	}
}

// createCampaign POSTs a campaign request and returns the session id.
func createCampaign(t *testing.T, ts *httptest.Server, req zeppelin.CampaignRequest) string {
	t.Helper()
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("create status = %d: %s", resp.StatusCode, body)
	}
	var status struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if status.ID == "" || status.State != "created" {
		t.Fatalf("session = %+v", status)
	}
	return status.ID
}

// TestCampaignStreamBitIdenticalToInProcess is the service's core
// contract: a 20-iteration campaign streamed over HTTP produces exactly
// the event sequence an in-process run of the same request produces —
// compared on the JSON wire bytes of every event.
func TestCampaignStreamBitIdenticalToInProcess(t *testing.T) {
	req := zeppelin.CampaignRequest{
		Workload: zeppelin.WorkloadSpec{Arrival: "drift", DriftPath: []string{"arxiv", "github"}},
		Iters:    20,
		Seed:     42,
	}
	want, err := zeppelin.RunCampaign(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	ts := testServer(t)
	id := createCampaign(t, ts, req)
	resp, err := http.Get(ts.URL + "/v1/campaigns/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q", ct)
	}
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var got []string
	for scanner.Scan() {
		if line := strings.TrimSpace(scanner.Text()); line != "" {
			got = append(got, line)
		}
	}
	if err := scanner.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want.Events) {
		t.Fatalf("streamed %d events, in-process run has %d", len(got), len(want.Events))
	}
	for i, line := range got {
		exp, err := json.Marshal(want.Events[i])
		if err != nil {
			t.Fatal(err)
		}
		if line != string(exp) {
			t.Fatalf("event %d differs over HTTP:\n got %s\nwant %s", i, line, exp)
		}
	}

	// The drained session reports done with every event accounted for.
	var status struct {
		State  string `json:"state"`
		Events int    `json:"events"`
	}
	getJSON(t, ts.URL+"/v1/campaigns/"+id, &status)
	if status.State != "done" || status.Events != req.Iters {
		t.Fatalf("final session = %+v", status)
	}

	// A session streams exactly once: the second fetch conflicts.
	var conflict zeppelin.ErrorBody
	r2 := getJSON(t, ts.URL+"/v1/campaigns/"+id+"/events", &conflict)
	if r2.StatusCode != http.StatusConflict || conflict.Error.Code != "conflict" {
		t.Fatalf("second events fetch: status=%d body=%+v", r2.StatusCode, conflict)
	}
}

// TestCampaignStreamHonorsClientDisconnect: dropping the HTTP request
// mid-stream cancels the session's campaign — the planner work stops,
// the session is marked cancelled, and the server's goroutines drain
// back to baseline.
func TestCampaignStreamHonorsClientDisconnect(t *testing.T) {
	ts := testServer(t)
	before := runtime.NumGoroutine()
	id := createCampaign(t, ts, zeppelin.CampaignRequest{Iters: 10000, Incremental: true})

	ctx, cancel := context.WithCancel(context.Background())
	reqHTTP, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/campaigns/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(reqHTTP)
	if err != nil {
		t.Fatal(err)
	}
	// Read a couple of events to prove the stream is live, then vanish.
	reader := bufio.NewReader(resp.Body)
	for i := 0; i < 2; i++ {
		line, err := reader.ReadString('\n')
		if err != nil {
			t.Fatalf("reading event %d: %v", i, err)
		}
		var ev zeppelin.CampaignEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("event %d not JSON: %v", i, err)
		}
	}
	cancel()
	resp.Body.Close()

	// The server must notice between iterations and mark the session
	// cancelled without finishing the 10000-iteration horizon.
	deadline := time.Now().Add(30 * time.Second)
	for {
		var status struct {
			State  string `json:"state"`
			Events int    `json:"events"`
		}
		getJSON(t, ts.URL+"/v1/campaigns/"+id, &status)
		if status.State == "cancelled" {
			if status.Events >= 10000 {
				t.Fatalf("campaign ran to completion despite disconnect: %+v", status)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("session never cancelled; state = %+v", status)
		}
		time.Sleep(20 * time.Millisecond)
	}
	// No leaked simulation goroutines once the stream is torn down. The
	// HTTP client's keep-alive read/write loops are not leaks — drop
	// them while polling so the count converges to the pre-test
	// baseline.
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		http.DefaultClient.CloseIdleConnections()
		ts.Client().CloseIdleConnections()
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked after disconnect: before=%d now=%d", before, runtime.NumGoroutine())
}

// TestCampaignRejectsBadRequest: resolution failures surface as 400s at
// session creation, before any simulation runs.
func TestCampaignRejectsBadRequest(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json",
		strings.NewReader(`{"iters":0}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body zeppelin.ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest || body.Error.Code != "bad_request" {
		t.Fatalf("status=%d body=%+v", resp.StatusCode, body)
	}
	if !strings.Contains(body.Error.Message, "iters") {
		t.Fatalf("message %q does not explain the failure", body.Error.Message)
	}
}

// TestSessionListing: created sessions appear in the listing in
// creation order — including past nine sessions, where lexicographic id
// order would interleave c10 between c1 and c2.
func TestSessionListing(t *testing.T) {
	ts := testServer(t)
	var ids []string
	for i := 0; i < 11; i++ {
		ids = append(ids, createCampaign(t, ts, zeppelin.CampaignRequest{Iters: 1}))
	}
	var listing struct {
		Campaigns []struct {
			ID        string `json:"id"`
			EventsURL string `json:"events_url"`
		} `json:"campaigns"`
	}
	getJSON(t, ts.URL+"/v1/campaigns", &listing)
	if len(listing.Campaigns) != len(ids) {
		t.Fatalf("listing has %d sessions, want %d", len(listing.Campaigns), len(ids))
	}
	for i, want := range ids {
		if listing.Campaigns[i].ID != want {
			t.Fatalf("listing[%d] = %q, want %q (creation order)", i, listing.Campaigns[i].ID, want)
		}
	}
	if listing.Campaigns[0].EventsURL != fmt.Sprintf("/v1/campaigns/%s/events", ids[0]) {
		t.Fatalf("events url = %q", listing.Campaigns[0].EventsURL)
	}
}

// TestSessionDelete: DELETE reclaims a non-running session; running
// sessions refuse with a conflict.
func TestSessionDelete(t *testing.T) {
	ts := testServer(t)
	id := createCampaign(t, ts, zeppelin.CampaignRequest{Iters: 1})
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/campaigns/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status = %d, want 204", resp.StatusCode)
	}
	var body zeppelin.ErrorBody
	r2 := getJSON(t, ts.URL+"/v1/campaigns/"+id, &body)
	if r2.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted session still present: %d", r2.StatusCode)
	}
}

// TestFinishedSessionsAreEvicted: once the table exceeds its cap, the
// oldest drained sessions are dropped at creation time while live ones
// survive.
func TestFinishedSessionsAreEvicted(t *testing.T) {
	srv := newServer(context.Background(), testConfig())
	srv.maxSessions = 2
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	first := createCampaign(t, ts, zeppelin.CampaignRequest{Iters: 1})
	resp, err := http.Get(ts.URL + "/v1/campaigns/" + first + "/events")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()

	live := createCampaign(t, ts, zeppelin.CampaignRequest{Iters: 1})
	createCampaign(t, ts, zeppelin.CampaignRequest{Iters: 1}) // exceeds the cap: first (done) must go
	if r := getJSON(t, ts.URL+"/v1/campaigns/"+first, nil); r.StatusCode != http.StatusNotFound {
		t.Fatalf("finished session %s not evicted: %d", first, r.StatusCode)
	}
	if r := getJSON(t, ts.URL+"/v1/campaigns/"+live, nil); r.StatusCode != http.StatusOK {
		t.Fatalf("live session %s evicted: %d", live, r.StatusCode)
	}
}

// TestAbandonedCreatedSessionsAreEvicted: with no finished sessions to
// reclaim, abandoned never-streamed reservations are evicted oldest
// first, so repeated POST /v1/campaigns cannot grow the daemon without
// bound — and an evicted reservation can no longer start streaming.
func TestAbandonedCreatedSessionsAreEvicted(t *testing.T) {
	srv := newServer(context.Background(), testConfig())
	srv.maxSessions = 2
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	oldest := createCampaign(t, ts, zeppelin.CampaignRequest{Iters: 1})
	createCampaign(t, ts, zeppelin.CampaignRequest{Iters: 1})
	newest := createCampaign(t, ts, zeppelin.CampaignRequest{Iters: 1}) // cap exceeded: oldest reservation goes
	if r := getJSON(t, ts.URL+"/v1/campaigns/"+oldest, nil); r.StatusCode != http.StatusNotFound {
		t.Fatalf("abandoned session %s not evicted: %d", oldest, r.StatusCode)
	}
	if r := getJSON(t, ts.URL+"/v1/campaigns/"+newest, nil); r.StatusCode != http.StatusOK {
		t.Fatalf("just-created session %s evicted: %d", newest, r.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/v1/campaigns/" + oldest + "/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted session still streams: %d", resp.StatusCode)
	}
}
