package main

import (
	"encoding/json"
	"io"
	"net/http"
	"slices"
	"sort"
	"sync"

	"zeppelin/internal/promtext"
	"zeppelin/pkg/zeppelin"
)

// sessionStates is the fixed lifecycle vocabulary the sessions gauge
// exports. Every state is always emitted (zero when empty) so scrapes
// see a stable series set and dashboards never miss a state that simply
// had no sessions at scrape time.
var sessionStates = []string{"created", "running", "done", "cancelled", "failed"}

// decisionKinds is the fixed decision vocabulary for the decisions
// counter: the internal decision package's kinds (admission, replan,
// placement, scale, route) plus the daemon-level "tune" kind — the
// search's final configuration selection, folded in as /v1/tune
// requests finish.
var decisionKinds = []string{"admission", "replan", "placement", "route", "scale", "tune"}

// serverMetrics is the daemon's in-process observability state: the
// pieces GET /metrics cannot read out of existing structures. Admission
// counters and bucket levels live in the Admission controller, plan
// cache counters in the PlanCache — this struct only owns what the
// handlers themselves observe: request latency per traffic class, plan
// solve timings, and per-kind decision counts from drained campaigns.
type serverMetrics struct {
	httpLatency map[zeppelin.AdmissionClass]*promtext.Histogram
	planSolve   *promtext.Histogram

	mu        sync.Mutex
	decisions map[string]uint64
	serve     map[string]*serveClassCounts
}

// serveClassCounts accumulates one SLO class's serving totals across
// drained serve sessions.
type serveClassCounts struct {
	requests   uint64
	violations uint64
	tokens     uint64
}

func newServerMetrics() *serverMetrics {
	m := &serverMetrics{
		httpLatency: make(map[zeppelin.AdmissionClass]*promtext.Histogram),
		planSolve:   promtext.NewHistogram(promtext.DefaultLatencyBuckets),
		decisions:   make(map[string]uint64),
		serve:       make(map[string]*serveClassCounts),
	}
	for _, class := range zeppelin.AdmissionClasses() {
		m.httpLatency[class] = promtext.NewHistogram(promtext.DefaultLatencyBuckets)
	}
	return m
}

// countDecisions folds one drained campaign's records into the per-kind
// totals.
func (m *serverMetrics) countDecisions(recs []zeppelin.DecisionRecord) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, r := range recs {
		m.decisions[r.Kind]++
	}
}

// countServe folds one drained serve session's per-class metrics into
// the serving counters.
func (m *serverMetrics) countServe(classes []zeppelin.ClassMetrics) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, cm := range classes {
		c := m.serve[cm.Class]
		if c == nil {
			c = &serveClassCounts{}
			m.serve[cm.Class] = c
		}
		c.requests += uint64(cm.Requests)
		c.violations += uint64(cm.Violations)
		c.tokens += uint64(cm.Tokens)
	}
}

func (m *serverMetrics) serveCounts() map[string]serveClassCounts {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]serveClassCounts, len(m.serve))
	for k, v := range m.serve {
		out[k] = *v
	}
	return out
}

func (m *serverMetrics) decisionCounts() map[string]uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]uint64, len(m.decisions))
	for k, v := range m.decisions {
		out[k] = v
	}
	return out
}

// handleMetrics renders GET /metrics: the Prometheus text exposition of
// every fleet-facing counter. Like /healthz it is never admitted —
// scrapers must see the saturation gauges precisely when the admission
// buckets are exhausted.
func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var b promtext.Builder
	class := func(c zeppelin.AdmissionClass) []promtext.Label {
		return []promtext.Label{promtext.L("class", string(c))}
	}

	b.Metric("zeppelind_admission_allowed_total", "counter", "Requests admitted per traffic class.")
	for _, c := range zeppelin.AdmissionClasses() {
		allowed, _ := s.admission.Bucket(c).Counts()
		b.Sample("zeppelind_admission_allowed_total", class(c), float64(allowed))
	}
	b.Metric("zeppelind_admission_denied_total", "counter", "Requests rejected with 429 per traffic class.")
	for _, c := range zeppelin.AdmissionClasses() {
		_, denied := s.admission.Bucket(c).Counts()
		b.Sample("zeppelind_admission_denied_total", class(c), float64(denied))
	}
	b.Metric("zeppelind_admission_bucket_tokens", "gauge", "Current token-bucket fill per traffic class.")
	for _, c := range zeppelin.AdmissionClasses() {
		tokens, _ := s.admission.Bucket(c).Level()
		b.Sample("zeppelind_admission_bucket_tokens", class(c), tokens)
	}
	b.Metric("zeppelind_admission_bucket_saturation", "gauge", "Token-bucket saturation per class: 0 idle, 1 exhausted.")
	for _, c := range zeppelin.AdmissionClasses() {
		tokens, burst := s.admission.Bucket(c).Level()
		sat := 0.0
		if burst > 0 {
			sat = 1 - tokens/burst
		}
		b.Sample("zeppelind_admission_bucket_saturation", class(c), sat)
	}

	if s.planCache != nil {
		st := s.planCache.Stats()
		b.Metric("zeppelind_plan_cache_hits_total", "counter", "Shared plan cache hits.")
		b.Sample("zeppelind_plan_cache_hits_total", nil, float64(st.Hits))
		b.Metric("zeppelind_plan_cache_misses_total", "counter", "Shared plan cache misses.")
		b.Sample("zeppelind_plan_cache_misses_total", nil, float64(st.Misses))
		b.Metric("zeppelind_plan_cache_evictions_total", "counter", "Entries dropped off the shared plan cache's LRU tail.")
		b.Sample("zeppelind_plan_cache_evictions_total", nil, float64(st.Evictions))
		b.Metric("zeppelind_plan_cache_entries", "gauge", "Shared plan cache resident entries.")
		b.Sample("zeppelind_plan_cache_entries", nil, float64(st.Entries))
		b.Metric("zeppelind_plan_cache_capacity", "gauge", "Shared plan cache entry capacity.")
		b.Sample("zeppelind_plan_cache_capacity", nil, float64(st.Capacity))
	}

	states := make(map[string]int, len(sessionStates))
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	for _, sess := range sessions {
		states[sess.status().State]++
	}
	b.Metric("zeppelind_sessions", "gauge", "Campaign sessions in the table by lifecycle state.")
	for _, st := range sessionStates {
		b.Sample("zeppelind_sessions", []promtext.Label{promtext.L("state", st)}, float64(states[st]))
	}

	b.Metric("zeppelind_http_request_duration_seconds", "histogram", "Admitted /v1 request latency per traffic class.")
	for _, c := range zeppelin.AdmissionClasses() {
		s.metrics.httpLatency[c].Write(&b, "zeppelind_http_request_duration_seconds", class(c))
	}
	b.Metric("zeppelind_plan_solve_seconds", "histogram", "POST /v1/plan solve latency (successful plans only).")
	s.metrics.planSolve.Write(&b, "zeppelind_plan_solve_seconds", nil)

	counts := s.metrics.decisionCounts()
	b.Metric("zeppelind_decisions_total", "counter", "Campaign decisions recorded by kind, folded in as sessions drain.")
	kinds := append([]string(nil), decisionKinds...)
	for k := range counts {
		if !slices.Contains(kinds, k) {
			kinds = append(kinds, k)
		}
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		b.Sample("zeppelind_decisions_total", []promtext.Label{promtext.L("kind", k)}, float64(counts[k]))
	}

	serveCounts := s.metrics.serveCounts()
	classNames := make([]string, 0, len(serveCounts))
	for name := range serveCounts {
		classNames = append(classNames, name)
	}
	sort.Strings(classNames)
	cls := func(name string) []promtext.Label {
		return []promtext.Label{promtext.L("class", name)}
	}
	b.Metric("zeppelind_serve_requests_total", "counter", "Serve-campaign requests completed per SLO class, folded in as sessions drain.")
	for _, name := range classNames {
		b.Sample("zeppelind_serve_requests_total", cls(name), float64(serveCounts[name].requests))
	}
	b.Metric("zeppelind_serve_violations_total", "counter", "Serve-campaign deadline violations per SLO class.")
	for _, name := range classNames {
		b.Sample("zeppelind_serve_violations_total", cls(name), float64(serveCounts[name].violations))
	}
	b.Metric("zeppelind_serve_tokens_total", "counter", "Serve-campaign delivered tokens per SLO class.")
	for _, name := range classNames {
		b.Sample("zeppelind_serve_tokens_total", cls(name), float64(serveCounts[name].tokens))
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	b.WriteTo(w) //nolint:errcheck // the connection is gone; nothing to do
}

// recordServe folds a drained serve session's per-class metrics into
// the serving counters. Sessions that did not run a serve campaign (or
// did not drain) fold nothing.
func (s *server) recordServe(sess *session) {
	rep := sess.camp.Report()
	if len(rep.Classes) == 0 {
		return
	}
	s.metrics.countServe(rep.Classes)
}

// recordDecisions folds a drained session's decision trace into the
// metrics counters and, when -decision-log is set, appends the trace to
// the structured NDJSON log stamped with the session id. Each session
// streams exactly once, so the fold happens exactly once per campaign.
func (s *server) recordDecisions(sess *session) {
	recs := sess.camp.Decisions()
	if len(recs) == 0 {
		return
	}
	s.metrics.countDecisions(recs)
	if s.decisionLog == nil {
		return
	}
	s.decisionLogMu.Lock()
	defer s.decisionLogMu.Unlock()
	zeppelin.WriteDecisionNDJSON(s.decisionLog, sess.id, recs) //nolint:errcheck // log writes must not fail the stream
}

// handleCampaignDecisions serves GET /v1/campaigns/{id}/decisions: the
// session's decision trace so far, stamped with the session id. Safe at
// any lifecycle stage — an unstreamed session just has no records yet.
func (s *server) handleCampaignDecisions(w http.ResponseWriter, r *http.Request) {
	sess := s.lookup(w, r)
	if sess == nil {
		return
	}
	recs := sess.camp.Decisions()
	if recs == nil {
		recs = []zeppelin.DecisionRecord{}
	}
	for i := range recs {
		recs[i].Session = sess.id
	}
	writeJSON(w, http.StatusOK, map[string]any{"campaign": sess.id, "decisions": recs})
}

// replayBody is the POST /v1/campaigns/{id}/replay request: the flip to
// apply, or nothing for a pure determinism check. The campaign itself
// comes from the session — replay always re-runs the request the
// session was created with.
type replayBody struct {
	Flip *zeppelin.FlipSpec `json:"flip,omitempty"`
}

// handleTune serves POST /v1/tune: the closed-loop policy search run
// in-process. Tune runs are experiment-class traffic — one request
// simulates Budget × Seeds whole campaigns — so they share the
// experiment admission bucket and hold one simulation slot for the
// duration; the request's internal pool is clamped to the server's
// -workers so a single tune cannot oversubscribe the daemon.
func (s *server) handleTune(w http.ResponseWriter, r *http.Request) {
	var req zeppelin.TuneRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Workers <= 0 || req.Workers > s.opts.Workers {
		req.Workers = s.opts.Workers
	}
	if err := req.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	if err := s.acquire(r.Context()); err != nil {
		return // client gone while queued
	}
	defer s.release()
	rep, err := zeppelin.RunTune(r.Context(), req)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "internal", "%v", err)
		return
	}
	s.recordTune(rep)
	writeJSON(w, http.StatusOK, rep)
}

// recordTune folds the search's final selection into the decision
// counters and, when -decision-log is set, the structured NDJSON log:
// one "tune" record whose chosen value is the winning configuration and
// whose alternatives are every evaluated candidate's fitness total —
// the same shape replan verdicts trace, so the log replays why a
// configuration won.
func (s *server) recordTune(rep *zeppelin.TuneReport) {
	alts := make([]zeppelin.DecisionAlternative, 0, len(rep.Candidates)+1)
	alts = append(alts, zeppelin.DecisionAlternative{
		Choice: rep.Baseline.Key,
		Score:  rep.Baseline.Fitness.Total,
		Chosen: !rep.Improved,
	})
	for _, c := range rep.Candidates {
		alts = append(alts, zeppelin.DecisionAlternative{
			Choice: c.Key,
			Score:  c.Fitness.Total,
			Chosen: rep.Improved && c.Key == rep.Winner.Key,
		})
	}
	recs := []zeppelin.DecisionRecord{{
		Kind:         "tune",
		Chosen:       rep.Winner.Key,
		Alternatives: alts,
	}}
	s.metrics.countDecisions(recs)
	if s.decisionLog == nil {
		return
	}
	s.decisionLogMu.Lock()
	defer s.decisionLogMu.Unlock()
	zeppelin.WriteDecisionNDJSON(s.decisionLog, "tune", recs) //nolint:errcheck // log writes must not fail the response
}

// handleReplayCampaign re-runs a session's campaign deterministically,
// optionally with one replan verdict flipped, and returns the
// counterfactual report. The replay runs fresh in-process campaigns (it
// never touches the session's own planner or state), so it works on
// created, running, and drained sessions alike.
func (s *server) handleReplayCampaign(w http.ResponseWriter, r *http.Request) {
	sess := s.lookup(w, r)
	if sess == nil {
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var body replayBody
	if err := dec.Decode(&body); err != nil && err != io.EOF {
		writeError(w, http.StatusBadRequest, "bad_request", "invalid request body: %v", err)
		return
	}
	if body.Flip != nil {
		if err := body.Flip.Validate(); err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
			return
		}
	}
	if err := s.acquire(r.Context()); err != nil {
		return // client gone while queued
	}
	defer s.release()
	rep, err := zeppelin.RunReplay(r.Context(), zeppelin.ReplayRequest{Campaign: sess.req, Flip: body.Flip},
		zeppelin.WithCampaignPlanCache(s.planCache))
	if err != nil {
		// Validation failures (bad campaign input resurfacing at replay
		// time) are the client's to fix: 400, not 500.
		if zeppelin.IsValidationError(err) {
			writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		} else {
			writeError(w, http.StatusInternalServerError, "internal", "%v", err)
		}
		return
	}
	writeJSON(w, http.StatusOK, rep)
}
