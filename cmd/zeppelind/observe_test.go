package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"zeppelin/internal/promtext"
	"zeppelin/pkg/zeppelin"
)

// obsCampaignReq is the fig13-style drifting cell the observability
// tests stream: drift keeps the threshold policy firing, so the decision
// trace carries non-forced replan verdicts to inspect and flip.
func obsCampaignReq(iters int) zeppelin.CampaignRequest {
	return zeppelin.CampaignRequest{
		Workload:    zeppelin.WorkloadSpec{Arrival: "drift", DriftPath: []string{"arxiv", "github"}},
		Iters:       iters,
		Seed:        42,
		Incremental: true,
	}
}

// drainSession streams a session's events to completion and returns the
// NDJSON lines.
func drainSession(t *testing.T, ts *httptest.Server, id string) []string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/campaigns/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events status = %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var lines []string
	for sc.Scan() {
		if line := strings.TrimSpace(sc.Text()); line != "" {
			lines = append(lines, line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

// scrape GETs and parses /metrics.
func scrape(t *testing.T, ts *httptest.Server) promtext.Metrics {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type = %q", ct)
	}
	ms, err := promtext.Parse(resp.Body)
	if err != nil {
		t.Fatalf("metrics do not parse: %v", err)
	}
	return ms
}

// TestMetricsEndpoint: /metrics parses as text exposition, exports the
// full family inventory, and the decision counters track drained
// campaigns.
func TestMetricsEndpoint(t *testing.T) {
	ts := testServer(t)

	before := scrape(t, ts)
	for _, fam := range []string{
		"zeppelind_admission_allowed_total",
		"zeppelind_admission_denied_total",
		"zeppelind_admission_bucket_tokens",
		"zeppelind_admission_bucket_saturation",
		"zeppelind_plan_cache_hits_total",
		"zeppelind_plan_cache_evictions_total",
		"zeppelind_plan_cache_capacity",
		"zeppelind_sessions",
		"zeppelind_http_request_duration_seconds_count",
		"zeppelind_plan_solve_seconds_count",
		"zeppelind_decisions_total",
	} {
		if !before.Has(fam) {
			t.Fatalf("metrics missing family %s", fam)
		}
	}
	if n := before.Sum("zeppelind_decisions_total"); n != 0 {
		t.Fatalf("fresh daemon has %v decisions", n)
	}
	// Every class appears on the saturation gauge, idle without limits.
	sat := before.ByLabel("zeppelind_admission_bucket_saturation", "class")
	for _, class := range zeppelin.AdmissionClasses() {
		if v, ok := sat[string(class)]; !ok || v != 0 {
			t.Fatalf("saturation[%s] = %v, %v (want present and 0)", class, v, ok)
		}
	}

	// A plan request lands in the solve histogram; a drained campaign
	// lands in the decision counters.
	resp, err := http.Post(ts.URL+"/v1/plan", "application/json",
		strings.NewReader(`{"model":"7B","dataset":"arxiv","seed":42}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	const iters = 20
	id := createCampaign(t, ts, obsCampaignReq(iters))
	events := drainSession(t, ts, id)
	if len(events) != iters {
		t.Fatalf("drained %d events, want %d", len(events), iters)
	}

	after := scrape(t, ts)
	if n := after.Sum("zeppelind_plan_solve_seconds_count"); n != 1 {
		t.Fatalf("plan solve count = %v, want 1", n)
	}
	byKind := after.ByLabel("zeppelind_decisions_total", "kind")
	if byKind["replan"] != iters {
		t.Fatalf("replan decisions = %v, want %v (one verdict per iteration)", byKind["replan"], iters)
	}
	if byKind["placement"] != iters {
		t.Fatalf("placement decisions = %v, want %v", byKind["placement"], iters)
	}
	if n := after.Sum("zeppelind_http_request_duration_seconds_count"); n <= before.Sum("zeppelind_http_request_duration_seconds_count") {
		t.Fatalf("request latency histogram did not grow: %v", n)
	}
	if n := after.ByLabel("zeppelind_sessions", "state")["done"]; n != 1 {
		t.Fatalf("done sessions gauge = %v, want 1", n)
	}
}

// TestCampaignDecisionsRoute: the decision trace is served with every
// record stamped with the session id, one replan and one placement
// verdict per iteration, and the scored alternatives attached.
func TestCampaignDecisionsRoute(t *testing.T) {
	ts := testServer(t)
	const iters = 10
	id := createCampaign(t, ts, obsCampaignReq(iters))
	drainSession(t, ts, id)

	var body struct {
		Campaign  string                    `json:"campaign"`
		Decisions []zeppelin.DecisionRecord `json:"decisions"`
	}
	resp := getJSON(t, ts.URL+"/v1/campaigns/"+id+"/decisions", &body)
	if resp.StatusCode != http.StatusOK || body.Campaign != id {
		t.Fatalf("decisions route: status=%d campaign=%q", resp.StatusCode, body.Campaign)
	}
	replans, placements := 0, 0
	for _, d := range body.Decisions {
		if d.Session != id {
			t.Fatalf("record not stamped with session: %+v", d)
		}
		switch d.Kind {
		case "replan":
			replans++
			if len(d.Alternatives) != 2 {
				t.Fatalf("replan record without scored alternatives: %+v", d)
			}
		case "placement":
			placements++
		case "admission":
		default:
			t.Fatalf("unknown decision kind %q", d.Kind)
		}
	}
	if replans != iters || placements != iters {
		t.Fatalf("replans=%d placements=%d, want %d each", replans, placements, iters)
	}
	if body.Decisions[0].Kind != "replan" || !body.Decisions[0].Forced {
		t.Fatalf("first verdict not the forced iter-0 replan: %+v", body.Decisions[0])
	}
}

// TestReplayRouteMatchesInProcess: the HTTP replay endpoint returns the
// same report the public API computes in-process — identity without a
// flip, a nonzero delta with one.
func TestReplayRouteMatchesInProcess(t *testing.T) {
	req := obsCampaignReq(25)
	ts := testServer(t)
	id := createCampaign(t, ts, req)
	drainSession(t, ts, id)

	// Empty body: pure determinism check.
	resp, err := http.Post(ts.URL+"/v1/campaigns/"+id+"/replay", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var ident zeppelin.ReplayReport
	err = json.NewDecoder(resp.Body).Decode(&ident)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("identity replay: status=%d err=%v", resp.StatusCode, err)
	}
	if !ident.Identical || ident.Flipped {
		t.Fatalf("identity replay = %+v", ident)
	}

	// Find a non-forced executed replan and flip it.
	var decisions struct {
		Decisions []zeppelin.DecisionRecord `json:"decisions"`
	}
	getJSON(t, ts.URL+"/v1/campaigns/"+id+"/decisions", &decisions)
	flipIter := -1
	for _, d := range decisions.Decisions {
		if d.Kind == "replan" && d.Chosen == "replan" && !d.Forced {
			flipIter = d.Iter
			break
		}
	}
	if flipIter < 0 {
		t.Fatal("no non-forced replan in the drift stream")
	}
	flip := zeppelin.FlipSpec{Iter: flipIter, Decision: "reuse"}
	raw, _ := json.Marshal(map[string]any{"flip": flip})
	resp, err = http.Post(ts.URL+"/v1/campaigns/"+id+"/replay", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var got zeppelin.ReplayReport
	err = json.NewDecoder(resp.Body).Decode(&got)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("flip replay: status=%d err=%v", resp.StatusCode, err)
	}
	if !got.Flipped || got.Delta == nil {
		t.Fatalf("flip replay = %+v", got)
	}

	want, err := zeppelin.RunReplay(context.Background(),
		zeppelin.ReplayRequest{Campaign: req, Flip: &flip})
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, _ := json.Marshal(got)
	wantJSON, _ := json.Marshal(want)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("HTTP replay diverges from in-process replay:\n got %s\nwant %s", gotJSON, wantJSON)
	}

	// Malformed flips are 400s.
	resp, err = http.Post(ts.URL+"/v1/campaigns/"+id+"/replay", "application/json",
		strings.NewReader(`{"flip":{"iter":3,"decision":"maybe"}}`))
	if err != nil {
		t.Fatal(err)
	}
	var envelope zeppelin.ErrorBody
	err = json.NewDecoder(resp.Body).Decode(&envelope)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusBadRequest || envelope.Error.Code != "bad_request" {
		t.Fatalf("bad flip: status=%d body=%+v err=%v", resp.StatusCode, envelope, err)
	}
}

// TestDecisionLogWritten: with -decision-log set, drained sessions
// append one session-stamped NDJSON line per decision, and the number of
// chosen replans in the log equals the number of replanned events on the
// wire — the CI smoke's cross-check.
func TestDecisionLogWritten(t *testing.T) {
	var logBuf bytes.Buffer
	cfg := testConfig()
	cfg.decisionLog = &logBuf
	ts := httptest.NewServer(newServer(context.Background(), cfg))
	t.Cleanup(ts.Close)

	id := createCampaign(t, ts, obsCampaignReq(15))
	events := drainSession(t, ts, id)

	replanned := 0
	for _, ev := range events {
		if strings.Contains(ev, `"replanned":true`) {
			replanned++
		}
	}
	if replanned == 0 {
		t.Fatal("drift stream produced no replans to cross-check")
	}

	var decisions struct {
		Decisions []zeppelin.DecisionRecord `json:"decisions"`
	}
	getJSON(t, ts.URL+"/v1/campaigns/"+id+"/decisions", &decisions)

	lines := strings.Split(strings.TrimRight(logBuf.String(), "\n"), "\n")
	if len(lines) != len(decisions.Decisions) {
		t.Fatalf("log has %d lines, trace has %d records", len(lines), len(decisions.Decisions))
	}
	logged := 0
	for _, line := range lines {
		if !strings.HasPrefix(line, `{"session":"`+id+`","iter":`) {
			t.Fatalf("log line missing session stamp: %s", line)
		}
		if strings.Contains(line, `"kind":"replan","chosen":"replan"`) {
			logged++
		}
	}
	if logged != replanned {
		t.Fatalf("log records %d chosen replans, stream replanned %d times", logged, replanned)
	}
}
