package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"zeppelin/pkg/zeppelin"
)

// serveSessionReq builds a small bursty two-class serving request that
// drains in a few dozen ticks on a one-node cell.
func serveSessionReq(t *testing.T) zeppelin.CampaignRequest {
	t.Helper()
	spec, err := zeppelin.ParseServeSpec("clients=3,arrival=gamma:cv=2.0,rate=30@0-6s,slo=interactive:p99=2s:prio=2;batch:p99=8s:prio=1,prefix=0.6,route=affinity")
	if err != nil {
		t.Fatal(err)
	}
	return zeppelin.CampaignRequest{
		Model:   "3B",
		Cluster: zeppelin.ClusterSpec{Preset: "A", Nodes: 1, TP: 1, TokensPerGPU: 4096},
		Iters:   500,
		Seed:    42,
		Serve:   spec,
	}
}

// TestServeSessionThroughHTTP: a serve campaign streamed over HTTP is
// bit-identical to the in-process run, the drained session folds
// per-class serving counters and route decisions into /metrics, and the
// session report carries the class table.
func TestServeSessionThroughHTTP(t *testing.T) {
	req := serveSessionReq(t)
	want, err := zeppelin.RunCampaign(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	ts := testServer(t)
	id := createCampaign(t, ts, req)
	lines := drainSession(t, ts, id)
	if len(lines) != len(want.Events) {
		t.Fatalf("streamed %d events, in-process run has %d", len(lines), len(want.Events))
	}
	for i, line := range lines {
		exp, err := json.Marshal(want.Events[i])
		if err != nil {
			t.Fatal(err)
		}
		if line != string(exp) {
			t.Fatalf("event %d differs over HTTP:\n got %s\nwant %s", i, line, exp)
		}
	}

	ms := scrape(t, ts)
	reqByClass := ms.ByLabel("zeppelind_serve_requests_total", "class")
	violByClass := ms.ByLabel("zeppelind_serve_violations_total", "class")
	for _, cm := range want.Classes {
		if got := reqByClass[cm.Class]; got != float64(cm.Requests) {
			t.Fatalf("serve requests[%s] = %v, want %d", cm.Class, got, cm.Requests)
		}
		if got := violByClass[cm.Class]; got != float64(cm.Violations) {
			t.Fatalf("serve violations[%s] = %v, want %d", cm.Class, got, cm.Violations)
		}
	}
	if n := ms.ByLabel("zeppelind_decisions_total", "kind")["route"]; n == 0 {
		t.Fatal("drained serve session folded no route decisions")
	}
}

// TestServeSessionsDeterministicOverHTTP: two identical serve sessions
// stream byte-identical NDJSON — the service-level half of the
// trace-replay v2 determinism contract.
func TestServeSessionsDeterministicOverHTTP(t *testing.T) {
	ts := testServer(t)
	req := serveSessionReq(t)
	a := strings.Join(drainSession(t, ts, createCampaign(t, ts, req)), "\n")
	b := strings.Join(drainSession(t, ts, createCampaign(t, ts, req)), "\n")
	if a != b {
		t.Fatal("identical serve sessions streamed different events")
	}
}

// TestServeValidationAnswers400: bad serve inputs are the client's to
// fix — both create-time conflicts and start-time trace failures answer
// 400 with the structured envelope, never 500.
func TestServeValidationAnswers400(t *testing.T) {
	ts := testServer(t)

	// Create-time: serve conflicts with a workload spec.
	conflicted := serveSessionReq(t)
	conflicted.Workload = zeppelin.WorkloadSpec{Arrival: "poisson"}
	raw, _ := json.Marshal(conflicted)
	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var envelope zeppelin.ErrorBody
	json.NewDecoder(resp.Body).Decode(&envelope) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || envelope.Error.Code != "bad_request" {
		t.Fatalf("workload+serve create = %d %+v, want 400 bad_request", resp.StatusCode, envelope)
	}

	// Start-time: a trace referencing an unknown SLO class passes create
	// (the spec itself is valid) but must fail the stream as the
	// client's input — 400, not 500.
	broken := serveSessionReq(t)
	broken.Serve.Trace = []zeppelin.ServeTraceEvent{{T: 0, Class: "nope", Tokens: 64}}
	id := createCampaign(t, ts, broken)
	streamResp, err := http.Get(ts.URL + "/v1/campaigns/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(streamResp.Body)
	streamResp.Body.Close()
	if streamResp.StatusCode != http.StatusBadRequest {
		t.Fatalf("broken trace stream = %d (%s), want 400", streamResp.StatusCode, body)
	}
	var streamEnvelope zeppelin.ErrorBody
	if err := json.Unmarshal(body, &streamEnvelope); err != nil || streamEnvelope.Error.Code != "bad_request" {
		t.Fatalf("broken trace envelope = %s", body)
	}
}
