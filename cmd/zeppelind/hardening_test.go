package main

// Fleet-hardening tests: the write-error and shutdown-drain bugfixes,
// overload determinism under admission control, the /v1/stats counters,
// and a session-churn hammer meant to run under -race.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"zeppelin/pkg/zeppelin"
)

// brokenPipeWriter is a ResponseWriter whose data writes always fail —
// the server-side view of a client that vanished mid-stream without the
// request context noticing yet.
type brokenPipeWriter struct {
	header http.Header
	code   int
	writes int
}

func (w *brokenPipeWriter) Header() http.Header {
	if w.header == nil {
		w.header = make(http.Header)
	}
	return w.header
}

func (w *brokenPipeWriter) WriteHeader(code int) { w.code = code }

func (w *brokenPipeWriter) Write([]byte) (int, error) {
	w.writes++
	return 0, errors.New("write tcp: broken pipe")
}

// TestEventsStreamStopsOnWriteError: when encoding an event fails, the
// handler must record the failure and stop — not keep simulating the
// rest of the horizon into a dead connection. The regression shape: a
// 20000-iteration campaign whose very first event write fails used to
// run all 20000 iterations and finish "done"; now it must finish
// "cancelled" immediately with the write error recorded.
func TestEventsStreamStopsOnWriteError(t *testing.T) {
	srv := newServer(context.Background(), testConfig())

	create := httptest.NewRequest(http.MethodPost, "/v1/campaigns",
		strings.NewReader(`{"iters":20000}`))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, create)
	if rec.Code != http.StatusCreated {
		t.Fatalf("create status = %d: %s", rec.Code, rec.Body)
	}
	var created struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &created); err != nil {
		t.Fatal(err)
	}

	bw := &brokenPipeWriter{}
	stream := httptest.NewRequest(http.MethodGet, "/v1/campaigns/"+created.ID+"/events", nil)
	start := time.Now()
	srv.ServeHTTP(bw, stream)
	elapsed := time.Since(start)
	if bw.code != http.StatusOK {
		t.Fatalf("stream status = %d, want 200 before the first write", bw.code)
	}
	if bw.writes != 1 {
		t.Fatalf("handler wrote %d times to a broken pipe, want exactly 1", bw.writes)
	}

	status := httptest.NewRecorder()
	srv.ServeHTTP(status, httptest.NewRequest(http.MethodGet, "/v1/campaigns/"+created.ID, nil))
	var got struct {
		State  string `json:"state"`
		Events int    `json:"events"`
		Error  string `json:"error"`
	}
	if err := json.Unmarshal(status.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.State != "cancelled" {
		t.Fatalf("state = %q after write failure, want cancelled (events=%d, err=%q, handler took %v)",
			got.State, got.Events, got.Error, elapsed)
	}
	if got.Events != 0 {
		t.Fatalf("counted %d delivered events over a broken pipe", got.Events)
	}
	if !strings.Contains(got.Error, "client disconnected") {
		t.Fatalf("session error = %q, want the recorded write failure", got.Error)
	}
}

// TestShutdownDrainsRunningStreams: cancelling the daemon's base
// context (what SIGTERM does in main) stops in-flight campaign streams
// between iterations and marks their sessions cancelled — graceful
// drain instead of severed connections.
func TestShutdownDrainsRunningStreams(t *testing.T) {
	baseCtx, shutdown := context.WithCancel(context.Background())
	defer shutdown()
	srv := newServer(baseCtx, testConfig())
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	before := runtime.NumGoroutine()

	id := createCampaign(t, ts, zeppelin.CampaignRequest{Iters: 10000, Incremental: true})
	resp, err := http.Get(ts.URL + "/v1/campaigns/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	reader := bufio.NewReader(resp.Body)
	events := 0
	for ; events < 2; events++ {
		if _, err := reader.ReadString('\n'); err != nil {
			t.Fatalf("reading event %d: %v", events, err)
		}
	}

	shutdown() // the daemon received SIGTERM

	// The stream must end well short of the horizon: the handler stops
	// at the next iteration boundary and closes the response.
	for {
		_, err := reader.ReadString('\n')
		if err != nil {
			break
		}
		events++
		if events >= 10000 {
			t.Fatal("stream ran to completion despite shutdown")
		}
	}

	var status struct {
		State string `json:"state"`
	}
	getJSON(t, ts.URL+"/v1/campaigns/"+id, &status)
	if status.State != "cancelled" {
		t.Fatalf("session state after shutdown = %q, want cancelled", status.State)
	}

	resp.Body.Close()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		http.DefaultClient.CloseIdleConnections()
		ts.Client().CloseIdleConnections()
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked after drain: before=%d now=%d", before, runtime.NumGoroutine())
}

// postPlan fires one plan request and returns the status, raw body, and
// Retry-After header.
func postPlan(t *testing.T, url, body string) (int, []byte, string) {
	t.Helper()
	resp, err := http.Post(url+"/v1/plan", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw, resp.Header.Get("Retry-After")
}

// TestOverloadDeterminism saturates a rate-limited single-worker server
// with identical plan requests: over-limit requests must carry the full
// 429 envelope (error.code, Retry-After), and every admitted response
// must be byte-identical — to each other, and to the same request
// served by an unlimited, cache-less server. Overload and cache state
// may change *whether* a request is answered, never *what* the answer
// is.
func TestOverloadDeterminism(t *testing.T) {
	limited := httptest.NewServer(newServer(context.Background(), serverConfig{
		workers: 1, seeds: 1,
		rate: 5, burst: 2,
		planCacheEntries: 64,
	}))
	t.Cleanup(limited.Close)
	// The reference server: no admission control, no shared cache.
	plain := httptest.NewServer(newServer(context.Background(), serverConfig{workers: 1, seeds: 1}))
	t.Cleanup(plain.Close)

	const body = `{"model":"7B","dataset":"arxiv","seed":42}`
	_, want, _ := postPlan(t, plain.URL, body)

	var admitted, denied int
	for i := 0; i < 30; i++ {
		status, raw, retryAfter := postPlan(t, limited.URL, body)
		switch status {
		case http.StatusOK:
			admitted++
			if !bytes.Equal(raw, want) {
				t.Fatalf("admitted plan %d differs from the cache-less reference:\n got %s\nwant %s", i, raw, want)
			}
		case http.StatusTooManyRequests:
			denied++
			var envelope zeppelin.ErrorBody
			if err := json.Unmarshal(raw, &envelope); err != nil {
				t.Fatalf("429 body is not the error envelope: %v: %s", err, raw)
			}
			if envelope.Error.Code != "rate_limited" || envelope.Error.Message == "" {
				t.Fatalf("429 envelope = %+v", envelope)
			}
			secs, err := strconv.Atoi(retryAfter)
			if err != nil || secs < 1 {
				t.Fatalf("Retry-After = %q, want an integer >= 1", retryAfter)
			}
		default:
			t.Fatalf("request %d: status = %d: %s", i, status, raw)
		}
	}
	// Burst guarantees the first requests land; 30 rapid-fire requests
	// against rate 5/s must overrun it.
	if admitted < 2 {
		t.Fatalf("admitted %d of 30, want at least the burst of 2", admitted)
	}
	if denied == 0 {
		t.Fatal("30 rapid requests against rate 5/s never hit 429")
	}

	// The same request through the *stateless* SDK solves identically —
	// cached plan responses never leak cache state.
	var req zeppelin.PlanRequest
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatal(err)
	}
	resp, err := zeppelin.NewPlanner().Plan(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	sdk, err := json.MarshalIndent(resp, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(want)) != strings.TrimSpace(string(sdk)) {
		t.Fatalf("HTTP plan differs from in-process SDK plan:\n got %s\nwant %s", want, sdk)
	}
}

// TestStatsRoute: /v1/stats exposes the admission counters, the shared
// plan cache hit rate, and the session table by state.
func TestStatsRoute(t *testing.T) {
	ts := testServer(t)
	const body = `{"model":"7B","dataset":"arxiv","seed":7}`
	// Two identical plans: a shared-cache miss then a hit.
	for i := 0; i < 2; i++ {
		if status, raw, _ := postPlan(t, ts.URL, body); status != http.StatusOK {
			t.Fatalf("plan %d: status = %d: %s", i, status, raw)
		}
	}
	createCampaign(t, ts, zeppelin.CampaignRequest{Iters: 1})

	var stats struct {
		Admission []zeppelin.AdmissionStats `json:"admission"`
		PlanCache *zeppelin.PlanCacheStats  `json:"plan_cache"`
		Sessions  map[string]int            `json:"sessions"`
	}
	resp := getJSON(t, ts.URL+"/v1/stats", &stats)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status = %d", resp.StatusCode)
	}
	if len(stats.Admission) != len(zeppelin.AdmissionClasses()) {
		t.Fatalf("admission stats cover %d classes, want %d", len(stats.Admission), len(zeppelin.AdmissionClasses()))
	}
	byClass := make(map[zeppelin.AdmissionClass]zeppelin.AdmissionStats)
	for _, s := range stats.Admission {
		byClass[s.Class] = s
	}
	if s := byClass[zeppelin.AdmitPlan]; s.Allowed != 2 || s.Denied != 0 {
		t.Fatalf("plan admission = %+v, want 2 allowed", s)
	}
	if stats.PlanCache == nil {
		t.Fatal("plan_cache missing from stats with the cache enabled")
	}
	if stats.PlanCache.Hits < 1 || stats.PlanCache.Misses < 1 {
		t.Fatalf("plan cache = %+v, want at least one hit and one miss from two identical plans", stats.PlanCache)
	}
	if stats.Sessions["created"] != 1 {
		t.Fatalf("sessions = %v, want one created", stats.Sessions)
	}
}

// TestSessionChurnUnderRace hammers one server with concurrent session
// creates, full event streams, deletes, listings, and stats reads while
// the table cap forces evictions. Run under -race, it checks the
// invariants that matter at fleet scale: a session that starts
// streaming is never evicted mid-run (every stream drains its full
// horizon), handlers never tear each other's state, and the server's
// goroutines return to baseline when the storm passes.
func TestSessionChurnUnderRace(t *testing.T) {
	srv := newServer(context.Background(), serverConfig{
		workers: 4, seeds: 1,
		planCacheEntries: 64,
	})
	srv.maxSessions = 4 // small cap: evictions happen constantly
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	before := runtime.NumGoroutine()

	const (
		streamers = 4
		rounds    = 5
		iters     = 3
	)
	var wg sync.WaitGroup
	errc := make(chan error, streamers*rounds+2)

	// Streamers: create a session and immediately drain its events.
	// Under eviction pressure the not-yet-streamed reservation may be
	// legally evicted before the GET lands (404/conflict) — but once a
	// stream is admitted with a 200, the session is running and must
	// never be evicted: every started stream delivers its complete
	// horizon even with the table thrashing.
	for g := 0; g < streamers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				var resp *http.Response
				var id string
				for attempt := 0; ; attempt++ {
					if attempt >= 50 {
						errc <- fmt.Errorf("streamer %d round %d: reservation evicted 50 times in a row", g, r)
						return
					}
					id = createCampaign(t, ts, zeppelin.CampaignRequest{Iters: iters, Seed: int64(g*rounds + r)})
					var err error
					resp, err = http.Get(ts.URL + "/v1/campaigns/" + id + "/events")
					if err != nil {
						errc <- err
						return
					}
					if resp.StatusCode == http.StatusOK {
						break
					}
					raw, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					// The reservation lost a race it is allowed to lose:
					// evicted (404) or claimed deleted (409) before streaming.
					if resp.StatusCode == http.StatusNotFound || resp.StatusCode == http.StatusConflict {
						continue
					}
					errc <- fmt.Errorf("stream %s: status %d: %s", id, resp.StatusCode, raw)
					return
				}
				lines := 0
				sc := bufio.NewScanner(resp.Body)
				sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
				for sc.Scan() {
					if strings.TrimSpace(sc.Text()) != "" {
						lines++
					}
				}
				scanErr := sc.Err()
				resp.Body.Close()
				if scanErr != nil {
					errc <- fmt.Errorf("stream %s severed: %w", id, scanErr)
					return
				}
				if lines != iters {
					errc <- fmt.Errorf("stream %s delivered %d of %d events (running session evicted?)", id, lines, iters)
					return
				}
			}
		}(g)
	}

	// Churner: floods the table with abandoned reservations, forcing the
	// eviction path to run against live streams, then deletes what it can.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			id := createCampaign(t, ts, zeppelin.CampaignRequest{Iters: 1})
			req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/campaigns/"+id, nil)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				errc <- err
				return
			}
			resp.Body.Close()
			// 204 (deleted), 404 (already evicted), and 409 (stream claimed
			// it first) are all legal outcomes of the race.
			switch resp.StatusCode {
			case http.StatusNoContent, http.StatusNotFound, http.StatusConflict:
			default:
				errc <- fmt.Errorf("delete %s: status %d", id, resp.StatusCode)
				return
			}
		}
	}()

	// Reader: listings and stats must stay coherent mid-churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			if r := getJSON(t, ts.URL+"/v1/campaigns", nil); r.StatusCode != http.StatusOK {
				errc <- fmt.Errorf("listing status %d", r.StatusCode)
				return
			}
			if r := getJSON(t, ts.URL+"/v1/stats", nil); r.StatusCode != http.StatusOK {
				errc <- fmt.Errorf("stats status %d", r.StatusCode)
				return
			}
		}
	}()

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if t.Failed() {
		return
	}

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		http.DefaultClient.CloseIdleConnections()
		ts.Client().CloseIdleConnections()
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked after churn: before=%d now=%d", before, runtime.NumGoroutine())
}

// TestLoadgenAgainstRealDaemon is the end-to-end loop the CI smoke job
// runs in-process: zeppelin-loadgen's engine drives a real zeppelind
// (rate-limited, shared cache on) and the report must show goodput,
// byte-identical plans, complete campaign streams, and sane latency
// percentiles.
func TestLoadgenAgainstRealDaemon(t *testing.T) {
	srv := newServer(context.Background(), serverConfig{
		workers: 2, seeds: 1,
		rate: 200, burst: 50,
		planCacheEntries: 64,
	})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	rep, err := zeppelin.RunLoad(context.Background(), zeppelin.LoadConfig{
		Addrs:         []string{ts.URL},
		Duration:      500 * time.Millisecond,
		PlanRPS:       100,
		Campaigns:     2,
		CampaignIters: 3,
		Client:        ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PlanOK == 0 {
		t.Fatalf("no plans admitted: %+v", rep)
	}
	if rep.PlanErrors != 0 || rep.CampaignErrors != 0 {
		t.Fatalf("errors against a healthy daemon: %+v", rep)
	}
	if rep.UniquePlanBodies != 1 {
		t.Fatalf("%d distinct plan bodies for one request — cache state leaked into responses", rep.UniquePlanBodies)
	}
	if rep.CampaignStreams != 2 || rep.CampaignEvents != 6 {
		t.Fatalf("campaign streams incomplete: %+v", rep)
	}
	if rep.PlansPerSec <= 0 || rep.PlanLatency.P50Ms <= 0 {
		t.Fatalf("degenerate report: %+v", rep)
	}
	if art := rep.Benchfmt(); art.Get("BenchmarkLoadgenPlan") == nil {
		t.Fatal("benchfmt artifact missing the gateable plan series")
	}
}
