// Command zeppelind is the long-running planning service: the public
// pkg/zeppelin API served over HTTP/JSON.
//
// Usage:
//
//	zeppelind [-addr :8080] [-workers N] [-seeds N] [-solve-workers N]
//	          [-rate R] [-burst B] [-plan-rate R] [-campaign-rate R]
//	          [-experiment-rate R] [-plan-cache N] [-decision-log PATH]
//	zeppelind -version
//
// Routes (all under the v1 API revision):
//
//	GET  /healthz                      — liveness: {"status":"ok"} (never rate limited)
//	GET  /metrics                      — Prometheus text exposition: admission
//	                                     counters and bucket saturation, plan-cache
//	                                     hit/eviction counters, request-latency and
//	                                     plan-solve histograms, sessions by state,
//	                                     decisions by kind (never rate limited)
//	GET  /v1/version                   — module version, Go version, API revision
//	GET  /v1/stats                     — fleet counters: per-class admission
//	                                     decisions, plan-cache hit rate, sessions by state
//	POST /v1/plan                      — one-shot partition+remap plan of a
//	                                     sampled batch (PlanRequest → PlanResponse)
//	POST /v1/campaigns                 — create a campaign session (CampaignRequest)
//	GET  /v1/campaigns                 — list sessions in creation order
//	GET  /v1/campaigns/{id}            — session status
//	DELETE /v1/campaigns/{id}          — drop a non-running session (finished
//	                                     sessions beyond a cap are also evicted
//	                                     oldest-first at creation time)
//	GET  /v1/campaigns/{id}/events     — stream the campaign: one NDJSON
//	                                     CampaignEvent per iteration, produced by the
//	                                     session-owned planner; disconnecting cancels
//	                                     the campaign between iterations
//	GET  /v1/campaigns/{id}/decisions  — the session's decision trace: every
//	                                     replan/admission/placement choice with the
//	                                     scored alternatives it was chosen over
//	POST /v1/campaigns/{id}/replay     — counterfactual replay: re-run the session's
//	                                     campaign with at most one replan verdict
//	                                     flipped ({"flip":{"iter":N,"decision":"reuse"}})
//	                                     and report the goodput/p99/replan delta
//	GET  /v1/experiments/{name}        — any paper experiment's structured result
//	POST /v1/tune                      — closed-loop policy search (TuneRequest →
//	                                     TuneReport): sweep a declared space over
//	                                     full campaigns and return the fittest
//	                                     configuration with its ready-to-paste
//	                                     flag set; experiment-class admission,
//	                                     one simulation slot, deterministic at
//	                                     every worker count
//
// -workers bounds both the number of requests simulating concurrently
// and each request's internal worker pool; every response is
// bit-identical at every worker count. Unknown /v1 routes and wrong
// methods return the structured JSON error envelope
// {"error":{"code":"...","message":"..."}}.
//
// -solve-workers N fans each /v1/plan partition solve across N pool
// workers (the speculative Alg. 1 threshold waves and per-node Alg. 2
// solves of internal/partition). Plans are bit-identical at every
// worker count — the flag only moves the zeppelind_plan_solve_seconds
// histogram, and responses report the active path in "solve_mode"
// ("serial" or "parallel-N"). The default 0 keeps the historical
// serial solve with no mode reported.
//
// -rate/-burst put a token-bucket admission controller in front of
// every /v1 route: each traffic class (plan, campaign, experiment,
// meta) gets an independent bucket admitting -rate requests/sec with
// -burst slack, and over-rate requests are rejected with a structured
// 429 ("rate_limited") carrying a Retry-After header before any
// simulation work happens. -plan-rate/-campaign-rate/-experiment-rate
// override -rate per class (negative means unlimited). The default
// -rate 0 disables admission control.
//
// -plan-cache N (default 256, 0 to disable) shares an N-entry exact
// plan cache across all plan requests and campaign sessions: identical
// partition solves are computed once per process. Reuse is
// bit-identical — responses never depend on cache state.
//
// -decision-log PATH appends the structured decision log: one compact
// JSON line per recorded decision, stamped with its session id, written
// as each campaign stream drains. Decision traces are deterministic per
// (request, seed), so the log is reproducible replay input.
//
// On SIGINT/SIGTERM the daemon drains: in-flight campaign streams are
// cancelled between iterations, their sessions marked cancelled, and
// the listener shuts down gracefully.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"zeppelin/pkg/zeppelin"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent simulation slots; must be >= 1")
	seeds := flag.Int("seeds", 3, "batches/campaigns averaged per experiment cell; must be >= 1")
	solveWorkers := flag.Int("solve-workers", 0, "fan each plan's partition solve across N workers (bit-identical plans); 0 keeps the serial solve")
	rate := flag.Float64("rate", 0, "per-class admission rate in requests/sec; 0 disables admission control")
	burst := flag.Int("burst", 8, "admission token-bucket depth per class")
	planRate := flag.Float64("plan-rate", 0, "admission rate override for /v1/plan (0 inherits -rate, negative is unlimited)")
	campaignRate := flag.Float64("campaign-rate", 0, "admission rate override for /v1/campaigns routes (0 inherits -rate, negative is unlimited)")
	experimentRate := flag.Float64("experiment-rate", 0, "admission rate override for /v1/experiments (0 inherits -rate, negative is unlimited)")
	planCache := flag.Int("plan-cache", zeppelin.DefaultPlanCacheEntries, "shared plan cache entries; 0 disables the cache")
	decisionLog := flag.String("decision-log", "", "append the NDJSON decision log to this file (empty disables)")
	version := flag.Bool("version", false, "print version information and exit")
	flag.Parse()
	if *version {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(zeppelin.Version()) //nolint:errcheck
		return
	}
	if *workers < 1 || *seeds < 1 {
		fmt.Fprintln(os.Stderr, "zeppelind: -workers and -seeds must be >= 1")
		flag.Usage()
		os.Exit(2)
	}
	if *planCache < 0 {
		fmt.Fprintln(os.Stderr, "zeppelind: -plan-cache must be >= 0")
		flag.Usage()
		os.Exit(2)
	}
	if *solveWorkers < 0 {
		fmt.Fprintln(os.Stderr, "zeppelind: -solve-workers must be >= 0")
		flag.Usage()
		os.Exit(2)
	}

	cfg := serverConfig{
		workers:          *workers,
		seeds:            *seeds,
		solveWorkers:     *solveWorkers,
		rate:             *rate,
		burst:            *burst,
		planRate:         *planRate,
		campaignRate:     *campaignRate,
		experimentRate:   *experimentRate,
		planCacheEntries: *planCache,
	}
	if *decisionLog != "" {
		f, err := os.OpenFile(*decisionLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("zeppelind: -decision-log: %v", err)
		}
		defer f.Close()
		cfg.decisionLog = f
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv := &http.Server{
		Addr:              *addr,
		Handler:           newServer(ctx, cfg),
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx) //nolint:errcheck
	}()

	v := zeppelin.Version()
	log.Printf("zeppelind %s (api %s, %s) listening on %s, %d worker(s)",
		v.Version, v.APIVersion, v.GoVersion, *addr, *workers)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
}
