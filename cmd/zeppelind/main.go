// Command zeppelind is the long-running planning service: the public
// pkg/zeppelin API served over HTTP/JSON.
//
// Usage:
//
//	zeppelind [-addr :8080] [-workers N] [-seeds N]
//	zeppelind -version
//
// Routes (all under the v1 API revision):
//
//	GET  /healthz                   — liveness: {"status":"ok"}
//	GET  /v1/version                — module version, Go version, API revision
//	POST /v1/plan                   — one-shot partition+remap plan of a
//	                                  sampled batch (PlanRequest → PlanResponse)
//	POST /v1/campaigns              — create a campaign session (CampaignRequest)
//	GET  /v1/campaigns              — list sessions in creation order
//	GET  /v1/campaigns/{id}         — session status
//	DELETE /v1/campaigns/{id}       — drop a non-running session (finished
//	                                  sessions beyond a cap are also evicted
//	                                  oldest-first at creation time)
//	GET  /v1/campaigns/{id}/events  — stream the campaign: one NDJSON
//	                                  CampaignEvent per iteration, produced by the
//	                                  session-owned planner; disconnecting cancels
//	                                  the campaign between iterations
//	GET  /v1/experiments/{name}     — any paper experiment's structured result
//
// -workers bounds both the number of requests simulating concurrently
// and each request's internal worker pool; every response is
// bit-identical at every worker count. Unknown /v1 routes and wrong
// methods return the structured JSON error envelope
// {"error":{"code":"...","message":"..."}}.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"zeppelin/pkg/zeppelin"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent simulation slots; must be >= 1")
	seeds := flag.Int("seeds", 3, "batches/campaigns averaged per experiment cell; must be >= 1")
	version := flag.Bool("version", false, "print version information and exit")
	flag.Parse()
	if *version {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(zeppelin.Version()) //nolint:errcheck
		return
	}
	if *workers < 1 || *seeds < 1 {
		fmt.Fprintln(os.Stderr, "zeppelind: -workers and -seeds must be >= 1")
		flag.Usage()
		os.Exit(2)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           newServer(*workers, *seeds),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx) //nolint:errcheck
	}()

	v := zeppelin.Version()
	log.Printf("zeppelind %s (api %s, %s) listening on %s, %d worker(s)",
		v.Version, v.APIVersion, v.GoVersion, *addr, *workers)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
}
