package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"zeppelin/pkg/zeppelin"
)

// maxBodyBytes bounds request bodies: plan and campaign requests are a
// few hundred bytes of configuration, never bulk data.
const maxBodyBytes = 1 << 20

// defaultMaxSessions bounds the session table: once the table exceeds
// it, creation evicts the oldest finished sessions first
// (done/cancelled/failed — whose full per-iteration reports are the
// memory that accumulates), then the oldest never-streamed "created"
// reservations, so neither drained reports nor abandoned creates can
// grow the daemon without bound. Running sessions are never evicted;
// DELETE /v1/campaigns/{id} reclaims one explicitly.
const defaultMaxSessions = 256

// serverConfig parameterizes the service beyond the worker pool: the
// per-class admission rates and the shared plan cache size, all mapped
// one to one from zeppelind's flags.
type serverConfig struct {
	// workers bounds concurrent simulation slots (and each request's
	// internal pool); seeds is the per-cell averaging of experiments.
	workers, seeds int
	// solveWorkers fans each plan request's partition solve across a
	// worker pool (0 = serial). Plans are bit-identical at every count;
	// the knob only moves the plan-solve latency histogram. Mapped from
	// the -solve-workers flag.
	solveWorkers int
	// rate is the default per-class admission rate in requests/sec; a
	// non-positive rate disables admission for classes not overridden.
	// burst is the shared bucket depth.
	rate  float64
	burst int
	// planRate/campaignRate/experimentRate override rate per class
	// (0 inherits, negative means unlimited).
	planRate, campaignRate, experimentRate float64
	// planCacheEntries bounds the shared plan cache; 0 disables it.
	planCacheEntries int
	// decisionLog receives the structured NDJSON decision log (one line
	// per decision, stamped with the session id) as sessions drain; nil
	// disables logging. Mapped from the -decision-log flag.
	decisionLog io.Writer
}

// server is the zeppelind planning service: it multiplexes concurrent
// plan, campaign, and experiment requests over a bounded pool of
// simulation slots and owns the campaign session table.
type server struct {
	opts zeppelin.Options
	// base is the daemon's lifetime context: cancelled on SIGTERM, it
	// cancels every in-flight campaign session between iterations so
	// graceful shutdown drains streams instead of severing them.
	base context.Context
	// sem bounds the number of requests simulating at once; each
	// request's own grid additionally honors opts.Workers.
	sem chan struct{}
	// admission is the per-class token-bucket front door of every /v1
	// route; over-rate requests get a structured 429 with Retry-After.
	admission *zeppelin.Admission
	// planCache is the process-wide shared plan tier (nil when
	// disabled): plan requests and campaign sessions dedupe identical
	// partition solves through it.
	planCache *zeppelin.PlanCache
	// planner answers /v1/plan; stateless, safe for concurrent use.
	planner *zeppelin.Planner
	// metrics backs GET /metrics: request-latency histograms, plan-solve
	// timings, and per-kind decision counts.
	metrics *serverMetrics
	// decisionLog (guarded by decisionLogMu) is the NDJSON decision log
	// sink; sessions append their traces as they drain.
	decisionLog   io.Writer
	decisionLogMu sync.Mutex
	mux           *http.ServeMux

	mu          sync.Mutex
	nextID      int
	maxSessions int
	sessions    map[string]*session
}

// session is one created campaign: the request, the campaign that owns
// the (possibly incremental) planner, and its lifecycle state.
type session struct {
	mu     sync.Mutex
	id     string
	seq    int // creation order; the listing and eviction sort on it
	camp   *zeppelin.Campaign
	req    zeppelin.CampaignRequest // as created; replay re-runs it
	state  string                   // created | running | done | cancelled | failed | deleted
	events int
	errMsg string
}

// finished reports whether the session's campaign can no longer run.
func (s *session) finished() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state == "done" || s.state == "cancelled" || s.state == "failed"
}

// sessionStatus is the wire form of a session.
type sessionStatus struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	Iters     int    `json:"iters"`
	Events    int    `json:"events"`
	EventsURL string `json:"events_url"`
	Error     string `json:"error,omitempty"`
}

func (s *session) status() sessionStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return sessionStatus{
		ID:        s.id,
		State:     s.state,
		Iters:     s.camp.Iters(),
		Events:    s.events,
		EventsURL: "/v1/campaigns/" + s.id + "/events",
		Error:     s.errMsg,
	}
}

// newServer builds the service. ctx is the daemon lifetime: cancelling
// it (SIGTERM in main) drains in-flight campaign streams between
// iterations and marks their sessions cancelled.
func newServer(ctx context.Context, cfg serverConfig) *server {
	if cfg.workers < 1 {
		cfg.workers = 1
	}
	if ctx == nil {
		ctx = context.Background()
	}
	s := &server{
		opts: zeppelin.Options{Seeds: cfg.seeds, Workers: cfg.workers},
		base: ctx,
		sem:  make(chan struct{}, cfg.workers),
		admission: zeppelin.NewAdmission(zeppelin.AdmissionConfig{
			Rate:  cfg.rate,
			Burst: cfg.burst,
			ClassRate: map[zeppelin.AdmissionClass]float64{
				zeppelin.AdmitPlan:       cfg.planRate,
				zeppelin.AdmitCampaign:   cfg.campaignRate,
				zeppelin.AdmitExperiment: cfg.experimentRate,
			},
		}),
		metrics:     newServerMetrics(),
		decisionLog: cfg.decisionLog,
		maxSessions: defaultMaxSessions,
		sessions:    make(map[string]*session),
	}
	if cfg.planCacheEntries > 0 {
		s.planCache = zeppelin.NewPlanCache(cfg.planCacheEntries)
	}
	// WithParallelSolve(0) is a no-op, so the default flag value keeps
	// the historical serial solve; any positive count fans the solve and
	// shows up in the zeppelind_plan_solve_seconds histogram handlePlan
	// feeds around planner.Plan.
	s.planner = zeppelin.NewPlanner(zeppelin.WithPlanCache(s.planCache),
		zeppelin.WithParallelSolve(cfg.solveWorkers))
	mux := http.NewServeMux()
	// /healthz and /metrics stay unadmitted: liveness probes must see
	// the daemon alive — and scrapers must see the saturation gauges —
	// even when every traffic class is saturated.
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/version", s.admitted(zeppelin.AdmitMeta, s.handleVersion))
	mux.HandleFunc("GET /v1/stats", s.admitted(zeppelin.AdmitMeta, s.handleStats))
	mux.HandleFunc("POST /v1/plan", s.admitted(zeppelin.AdmitPlan, s.handlePlan))
	mux.HandleFunc("POST /v1/campaigns", s.admitted(zeppelin.AdmitCampaign, s.handleCreateCampaign))
	mux.HandleFunc("GET /v1/campaigns", s.admitted(zeppelin.AdmitCampaign, s.handleListCampaigns))
	mux.HandleFunc("GET /v1/campaigns/{id}", s.admitted(zeppelin.AdmitCampaign, s.handleGetCampaign))
	mux.HandleFunc("DELETE /v1/campaigns/{id}", s.admitted(zeppelin.AdmitCampaign, s.handleDeleteCampaign))
	mux.HandleFunc("GET /v1/campaigns/{id}/events", s.admitted(zeppelin.AdmitCampaign, s.handleCampaignEvents))
	mux.HandleFunc("GET /v1/campaigns/{id}/decisions", s.admitted(zeppelin.AdmitCampaign, s.handleCampaignDecisions))
	mux.HandleFunc("POST /v1/campaigns/{id}/replay", s.admitted(zeppelin.AdmitCampaign, s.handleReplayCampaign))
	mux.HandleFunc("GET /v1/experiments/{name}", s.admitted(zeppelin.AdmitExperiment, s.handleExperiment))
	mux.HandleFunc("POST /v1/tune", s.admitted(zeppelin.AdmitExperiment, s.handleTune))
	// Wrong-method hits on known /v1 routes get a structured 405 (the
	// method-specific patterns above win for matching methods) …
	for _, p := range []string{"/v1/version", "/v1/stats", "/v1/plan", "/v1/campaigns",
		"/v1/campaigns/{id}", "/v1/campaigns/{id}/events", "/v1/campaigns/{id}/decisions",
		"/v1/campaigns/{id}/replay", "/v1/experiments/{name}", "/v1/tune"} {
		mux.HandleFunc(p, s.handleMethodNotAllowed)
	}
	// … and every unknown /v1 route gets a structured 404 instead of
	// the default text page.
	mux.HandleFunc("/v1/", s.handleUnknown)
	s.mux = mux
	return s
}

// admitted wraps a handler behind one traffic class's token bucket.
// Over-rate requests are rejected before any body parsing or simulation
// work with the structured 429 envelope and a Retry-After header — the
// overload signal admission control exists to give clients.
func (s *server) admitted(class zeppelin.AdmissionClass, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ok, retry := s.admission.Admit(class)
		if !ok {
			secs := int(math.Ceil(retry.Seconds()))
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			writeError(w, http.StatusTooManyRequests, "rate_limited",
				"admission control: %s capacity exhausted, retry in %ds", class, secs)
			return
		}
		t0 := time.Now()
		h(w, r)
		s.metrics.httpLatency[class].Observe(time.Since(t0).Seconds())
	}
}

// ServeHTTP makes the server an http.Handler.
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// acquire claims a simulation slot, honoring cancellation while queued.
func (s *server) acquire(ctx context.Context) error {
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *server) release() { <-s.sem }

// writeJSON emits an indented JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the connection is gone; nothing to do
}

// writeError emits the /v1 error envelope.
func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, zeppelin.ErrorBody{Error: zeppelin.ErrorDetail{
		Code:    code,
		Message: fmt.Sprintf(format, args...),
	}})
}

func (s *server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *server) handleVersion(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, zeppelin.Version())
}

// statsBody is the GET /v1/stats payload: the fleet-facing counters —
// per-class admission decisions, shared plan cache hit rate, and the
// session table by state.
type statsBody struct {
	Admission []zeppelin.AdmissionStats `json:"admission"`
	PlanCache *zeppelin.PlanCacheStats  `json:"plan_cache,omitempty"`
	Sessions  map[string]int            `json:"sessions"`
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	body := statsBody{
		Admission: s.admission.Stats(),
		Sessions:  make(map[string]int),
	}
	if s.planCache != nil {
		st := s.planCache.Stats()
		body.PlanCache = &st
	}
	s.mu.Lock()
	ordered := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		ordered = append(ordered, sess)
	}
	s.mu.Unlock()
	for _, sess := range ordered {
		body.Sessions[sess.status().State]++
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *server) handleUnknown(w http.ResponseWriter, r *http.Request) {
	writeError(w, http.StatusNotFound, "not_found", "no such v1 route: %s %s", r.Method, r.URL.Path)
}

func (s *server) handleMethodNotAllowed(w http.ResponseWriter, r *http.Request) {
	writeError(w, http.StatusMethodNotAllowed, "method_not_allowed",
		"method %s is not allowed on %s", r.Method, r.URL.Path)
}

// decode reads one JSON request body into v.
func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "invalid request body: %v", err)
		return false
	}
	return true
}

func (s *server) handlePlan(w http.ResponseWriter, r *http.Request) {
	var req zeppelin.PlanRequest
	if !decode(w, r, &req) {
		return
	}
	if err := req.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	if err := s.acquire(r.Context()); err != nil {
		return // client gone while queued
	}
	defer s.release()
	t0 := time.Now()
	resp, err := s.planner.Plan(r.Context(), req)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "internal", "%v", err)
		return
	}
	s.metrics.planSolve.Observe(time.Since(t0).Seconds())
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleCreateCampaign(w http.ResponseWriter, r *http.Request) {
	var req zeppelin.CampaignRequest
	if !decode(w, r, &req) {
		return
	}
	// Every session records its decisions: the trace backs the
	// /decisions route, the structured decision log, and the per-kind
	// /metrics counters. Recording is a handful of small allocations per
	// iteration — the gated BenchmarkDecisionOverhead keeps it ≤5%.
	camp, err := zeppelin.NewCampaign(req,
		zeppelin.WithCampaignPlanCache(s.planCache), zeppelin.WithCampaignDecisions())
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	s.mu.Lock()
	s.nextID++
	sess := &session{id: fmt.Sprintf("c%d", s.nextID), seq: s.nextID, camp: camp, req: req, state: "created"}
	s.sessions[sess.id] = sess
	s.evictLocked(sess)
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, sess.status())
}

// evictLocked bounds the session table: while it exceeds its cap, the
// oldest finished sessions (whose drained reports are the memory that
// accumulates) are dropped first, then the oldest never-streamed
// "created" sessions — idle reservations a client abandoned. Evicting a
// created session marks it deleted under its own lock, the same lock
// the events handler claims the stream under, so a racing stream start
// observes the eviction and conflicts instead of running unreachable.
// Running sessions and the just-created keep session are never evicted
// (a table full of live streams may therefore exceed the cap; the cap
// bounds what accumulates, not what is in flight). Callers hold s.mu.
func (s *server) evictLocked(keep *session) {
	if len(s.sessions) <= s.maxSessions {
		return
	}
	finished := make([]*session, 0, len(s.sessions))
	idle := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		if sess == keep {
			continue
		}
		if sess.finished() {
			finished = append(finished, sess)
		} else if sess.isCreated() {
			idle = append(idle, sess)
		}
	}
	sort.Slice(finished, func(i, j int) bool { return finished[i].seq < finished[j].seq })
	sort.Slice(idle, func(i, j int) bool { return idle[i].seq < idle[j].seq })
	for _, sess := range finished {
		if len(s.sessions) <= s.maxSessions {
			return
		}
		delete(s.sessions, sess.id)
	}
	for _, sess := range idle {
		if len(s.sessions) <= s.maxSessions {
			return
		}
		if sess.claimForEviction() {
			delete(s.sessions, sess.id)
		}
	}
}

// claimForEviction atomically flips a still-created session to deleted,
// reporting whether the eviction won (false if a stream claimed it in
// the meantime).
func (s *session) claimForEviction() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != "created" {
		return false
	}
	s.state = "deleted"
	return true
}

// isCreated reports whether the session is an unstreamed reservation.
func (s *session) isCreated() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state == "created"
}

// lookup returns the session for a path id, or nil after writing a 404.
func (s *server) lookup(w http.ResponseWriter, r *http.Request) *session {
	id := r.PathValue("id")
	s.mu.Lock()
	sess := s.sessions[id]
	s.mu.Unlock()
	if sess == nil {
		writeError(w, http.StatusNotFound, "not_found", "no such campaign session %q", id)
	}
	return sess
}

func (s *server) handleGetCampaign(w http.ResponseWriter, r *http.Request) {
	if sess := s.lookup(w, r); sess != nil {
		writeJSON(w, http.StatusOK, sess.status())
	}
}

func (s *server) handleListCampaigns(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	ordered := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		ordered = append(ordered, sess)
	}
	s.mu.Unlock()
	// Creation order, not lexicographic id order (c10 must follow c9).
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].seq < ordered[j].seq })
	out := make([]sessionStatus, len(ordered))
	for i, sess := range ordered {
		out[i] = sess.status()
	}
	writeJSON(w, http.StatusOK, map[string]any{"campaigns": out})
}

// handleDeleteCampaign removes a session, reclaiming its report. A
// running session cannot be deleted — disconnect its events stream
// first, which cancels the campaign between iterations. The state flips
// to "deleted" under the session lock, the same lock the events handler
// claims the stream under, so a DELETE racing a stream start can never
// leave a running campaign unreachable: whichever transition wins, the
// other observes it and conflicts.
func (s *server) handleDeleteCampaign(w http.ResponseWriter, r *http.Request) {
	sess := s.lookup(w, r)
	if sess == nil {
		return
	}
	sess.mu.Lock()
	if sess.state == "running" {
		sess.mu.Unlock()
		writeError(w, http.StatusConflict, "conflict",
			"campaign session %q is running; disconnect its events stream before deleting", sess.id)
		return
	}
	sess.state = "deleted"
	sess.mu.Unlock()
	s.mu.Lock()
	delete(s.sessions, sess.id)
	s.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

// handleCampaignEvents runs the session's campaign and streams one
// NDJSON line per iteration. The stream stops between iterations on
// either cancellation signal: client disconnect (the request context)
// or daemon shutdown (the server's base context) — in both cases the
// session's planner work stops and the session is marked cancelled. A
// failed write is treated as a disconnect immediately: the handler
// records the write error and stops producing events rather than
// simulating and encoding the rest of the horizon into a dead
// connection.
func (s *server) handleCampaignEvents(w http.ResponseWriter, r *http.Request) {
	sess := s.lookup(w, r)
	if sess == nil {
		return
	}
	sess.mu.Lock()
	if sess.state != "created" {
		state := sess.state
		sess.mu.Unlock()
		writeError(w, http.StatusConflict, "conflict",
			"campaign session %q is %s; events stream exactly once per session", sess.id, state)
		return
	}
	sess.state = "running"
	sess.mu.Unlock()

	// The session context merges both cancellation sources: the client
	// vanishing cancels r.Context(), SIGTERM cancels s.base. Either one
	// stops the campaign at the next iteration boundary, so graceful
	// shutdown drains running streams (terminal state written, session
	// marked cancelled) instead of killing them mid-write.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stop := context.AfterFunc(s.base, cancel)
	defer stop()

	finish := func(state, msg string) {
		sess.mu.Lock()
		sess.state = state
		sess.errMsg = msg
		sess.mu.Unlock()
	}
	if err := s.acquire(ctx); err != nil {
		finish("cancelled", err.Error())
		return
	}
	defer s.release()
	if err := sess.camp.Start(ctx); err != nil {
		finish("failed", err.Error())
		// Start-time validation failures — a broken replay trace, a serve
		// timeline referencing an unknown SLO class — are the client's
		// input, not a daemon fault: answer 400, not 500.
		if zeppelin.IsValidationError(err) {
			writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		} else {
			writeError(w, http.StatusInternalServerError, "internal", "%v", err)
		}
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	var writeErr error
	for {
		ev, ok := sess.camp.Next()
		if !ok {
			break
		}
		if err := enc.Encode(ev); err != nil {
			// The connection is dead: every further iteration would be
			// simulated and encoded for nobody. Record the failure and
			// stop producing events now.
			writeErr = err
			cancel()
			break
		}
		sess.mu.Lock()
		sess.events++
		sess.mu.Unlock()
		if flusher != nil {
			flusher.Flush()
		}
	}
	switch err := sess.camp.Err(); {
	case writeErr != nil:
		finish("cancelled", "client disconnected: "+writeErr.Error())
	case err == nil:
		finish("done", "")
		// Per-class serving metrics only exist for fully drained serve
		// streams — partial streams would undercount every class.
		s.recordServe(sess)
	case ctx.Err() != nil:
		finish("cancelled", err.Error())
	default:
		finish("failed", err.Error())
	}
	// The stream ran exactly once, so this folds the session's decision
	// trace into the metrics counters (and the decision log) exactly once.
	s.recordDecisions(sess)
}

func (s *server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !zeppelin.IsExperiment(name) {
		writeError(w, http.StatusNotFound, "not_found",
			"unknown experiment %q (want one of %v)", name, zeppelin.Experiments())
		return
	}
	if err := s.acquire(r.Context()); err != nil {
		return
	}
	defer s.release()
	res, err := zeppelin.RunExperiment(r.Context(), name, s.opts)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "internal", "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}
