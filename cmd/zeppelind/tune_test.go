package main

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"zeppelin/pkg/zeppelin"
)

// TestTuneEndpoint drives a small search through POST /v1/tune and
// checks the report shape plus the decision-trace side effect: the
// winner selection counts under the "tune" kind on /metrics.
func TestTuneEndpoint(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Post(ts.URL+"/v1/tune", "application/json", strings.NewReader(
		`{"workload":{"arrival":"drift","drift_path":["arxiv","github"]},`+
			`"space":"policy=threshold,threshold=1.1:1.5","budget":3,"iters":15}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d: %s", resp.StatusCode, raw)
	}
	var rep zeppelin.TuneReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Baseline.Fitness.Total != 1 {
		t.Fatalf("baseline fitness = %v, want exactly 1", rep.Baseline.Fitness.Total)
	}
	if rep.Winner.Key == "" || rep.Winner.Flags == "" {
		t.Fatalf("winner missing identity or flags: %+v", rep.Winner)
	}
	if rep.Evaluated == 0 || rep.Evaluated > rep.Budget {
		t.Fatalf("evaluated %d against budget %d", rep.Evaluated, rep.Budget)
	}

	metrics, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer metrics.Body.Close()
	raw, _ := io.ReadAll(metrics.Body)
	if !strings.Contains(string(raw), `zeppelind_decisions_total{kind="tune"} 1`) {
		t.Fatalf("metrics do not count the tune decision:\n%s", raw)
	}
}

// TestTuneRejectsBadRequests: grammar and parameter failures surface as
// the structured 400 envelope before any simulation runs.
func TestTuneRejectsBadRequests(t *testing.T) {
	ts := testServer(t)
	for _, body := range []string{
		`{"space":"bogus=1"}`,
		`{"budget":-1}`,
		`{"weights":{"goodput":-0.5}}`,
		`{"unknown_field":true}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/tune", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var eb zeppelin.ErrorBody
		if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || eb.Error.Code != "bad_request" {
			t.Fatalf("body %s: status=%d error=%+v", body, resp.StatusCode, eb)
		}
	}
}

// TestTuneWrongMethodIs405: the route participates in the structured
// 405 envelope like every other /v1 route.
func TestTuneWrongMethodIs405(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/v1/tune")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var eb zeppelin.ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusMethodNotAllowed || eb.Error.Code != "method_not_allowed" {
		t.Fatalf("status=%d error=%+v", resp.StatusCode, eb)
	}
}

// TestCampaignNegativeReplanCostIs400 is the HTTP face of the
// replan-cost regression: the old silent clamp-to-zero is now a
// structured validation error.
func TestCampaignNegativeReplanCostIs400(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json",
		strings.NewReader(`{"iters":10,"replan_cost_sec":-0.01}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var eb zeppelin.ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest || eb.Error.Code != "bad_request" {
		t.Fatalf("status=%d error=%+v", resp.StatusCode, eb)
	}
	if !strings.Contains(eb.Error.Message, "replan cost") {
		t.Fatalf("message %q does not explain the replan-cost failure", eb.Error.Message)
	}
}

// TestCampaignAutoscaleOverHTTP: an autoscaled campaign streams through
// the daemon, its world stays within the cluster, and the scale verdicts
// reach the session's decision trace.
func TestCampaignAutoscaleOverHTTP(t *testing.T) {
	ts := testServer(t)
	id := createCampaign(t, ts, zeppelin.CampaignRequest{
		Workload:  zeppelin.WorkloadSpec{Arrival: "drift", DriftPath: []string{"arxiv", "github", "prolong64k"}},
		Iters:     25,
		Autoscale: &zeppelin.AutoscaleSpec{UpUtil: 0.95, DownUtil: 0.9, Cooldown: 2},
	})
	resp, err := http.Get(ts.URL + "/v1/campaigns/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	dec := json.NewDecoder(resp.Body)
	for {
		var ev zeppelin.CampaignEvent
		if err := dec.Decode(&ev); err != nil {
			break
		}
		if ev.World < 1 {
			t.Fatalf("iter %d: world %d below 1", ev.Iter, ev.World)
		}
	}

	var trace struct {
		Decisions []zeppelin.DecisionRecord `json:"decisions"`
	}
	getJSON(t, ts.URL+"/v1/campaigns/"+id+"/decisions", &trace)
	sawScale := false
	for _, d := range trace.Decisions {
		if d.Kind == "scale" {
			sawScale = true
			break
		}
	}
	if !sawScale {
		t.Fatal("autoscaled session traced no scale decisions")
	}
}
