// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation, plus ablation benches for the design choices DESIGN.md
// calls out. Each benchmark regenerates its experiment end to end on the
// simulated substrate and reports the headline quantity (usually the
// Zeppelin-over-TE-CP speedup) as a custom metric, so `go test -bench=.`
// reproduces the whole evaluation. The printable row/series output lives
// in cmd/zeppelin (`zeppelin fig8`, etc.), which drives the same runners.
package zeppelin_test

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"testing"

	"zeppelin/internal/baselines"
	"zeppelin/internal/campaign"
	"zeppelin/internal/cluster"
	"zeppelin/internal/decision"
	"zeppelin/internal/experiments"
	"zeppelin/internal/model"
	"zeppelin/internal/partition"
	"zeppelin/internal/remap"
	"zeppelin/internal/runner"
	"zeppelin/internal/seq"
	"zeppelin/internal/trainer"
	"zeppelin/internal/tune"
	"zeppelin/internal/workload"
	zep "zeppelin/internal/zeppelin"
)

// quick keeps per-iteration cost sane: benchmarks average one batch per
// cell; the CLI defaults to three.
var quick = experiments.Options{Seeds: 1}

func BenchmarkFig1DatasetDistributions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs := experiments.Fig1()
		if len(rs) != len(workload.All) {
			b.Fatal("missing datasets")
		}
	}
}

func BenchmarkTable2Distributions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.WriteTable2(io.Discard)
	}
}

func BenchmarkFig3AttentionCostBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig3Packing(workload.StackExchange, 20)
		b.ReportMetric(experiments.ShortSeqOverheadShare(r, 0), "short-overhead-share")
		experiments.Fig3EvenCP(workload.StackExchange, 20)
	}
}

func BenchmarkFig5ZoneBoundaries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig5()
		b.ReportMetric(r.S0, "local-intra-boundary-tokens")
		b.ReportMetric(r.S1, "intra-inter-boundary-tokens")
	}
}

func BenchmarkFig8EndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		panels, err := experiments.Fig8(quick)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(experiments.AverageSpeedup(panels), "avg-speedup-x")
		b.ReportMetric(experiments.MaxSpeedup(panels), "max-speedup-x")
	}
}

func BenchmarkFig9Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := experiments.Fig9(quick)
		if err != nil {
			b.Fatal(err)
		}
		// Report Zeppelin's 128-vs-16 GPU scaling factor on ArXiv.
		for _, s := range series {
			if s.Dataset == "arxiv" && s.Method == "Zeppelin" {
				b.ReportMetric(s.Tput[len(s.Tput)-1]/s.Tput[0], "zeppelin-scaling-x")
			}
		}
	}
}

func BenchmarkFig10ClusterAB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig10(quick)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 6 {
			b.Fatal("expected 2 clusters x 3 datasets")
		}
	}
}

func BenchmarkFig11Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig11(quick)
		if err != nil {
			b.Fatal(err)
		}
		r := rows[0] // arxiv
		base := r.Tput[0]
		b.ReportMetric(r.Tput[1]/base, "routing-only-x")
		b.ReportMetric(r.Tput[len(r.Tput)-1]/base, "full-zeppelin-x")
	}
}

func BenchmarkFig12Timeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, sc := range experiments.Fig12Scenarios() {
			if _, err := experiments.Fig12Trace(sc); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkFig13Campaign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig13(quick)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(experiments.Fig13CampaignSpeedup(res), "campaign-speedup-x")
		b.ReportMetric(experiments.Fig13ReplanWin(res), "replan-win-x")
	}
}

func BenchmarkFig14Faults(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig14(quick)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(experiments.Fig14DegradationEdge(res, "straggler"), "straggler-edge-x")
		b.ReportMetric(experiments.Fig14DegradationEdge(res, "shrink"), "shrink-edge-x")
	}
}

func BenchmarkServeCampaign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig16(quick)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(experiments.Fig16AffinityWin(res), "affinity-win-x")
	}
}

func BenchmarkTable3CostDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cols, err := experiments.Table3()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cols[1].Forward.Max/cols[0].Forward.Max, "skew-over-balanced-x")
	}
}

// ---------------------------------------------------------------------
// Ablation benches for design choices (DESIGN.md §5): routing proxy
// count, capacity factor, and per-method single-cell costs.
// ---------------------------------------------------------------------

func cellBench(b *testing.B, m trainer.Method) {
	cell := experiments.Cell{Model: model.LLaMA7B, Spec: cluster.ClusterA, Nodes: 2, TP: 1, TokensPerGPU: 4096}
	for i := 0; i < b.N; i++ {
		tput, err := experiments.MeanThroughput(context.Background(), cell, workload.GitHub.Batch, m, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(tput, "tokens/s")
	}
}

func BenchmarkMethodTECP(b *testing.B)     { cellBench(b, baselines.TECP{}) }
func BenchmarkMethodLLaMACP(b *testing.B)  { cellBench(b, baselines.LLaMACP{}) }
func BenchmarkMethodHybridDP(b *testing.B) { cellBench(b, baselines.HybridDP{}) }
func BenchmarkMethodZeppelin(b *testing.B) { cellBench(b, zep.Full()) }

// Ablation: Zeppelin feature flags on the long-sequence dataset.
func BenchmarkAblationAttnEngineOnly(b *testing.B)   { cellBench(b, zep.Method{}) }
func BenchmarkAblationEngineAndRouting(b *testing.B) { cellBench(b, zep.Method{Routing: true}) }

// Ablation: capacity factor governs partition granularity.
func BenchmarkAblationCapacityFactor(b *testing.B) {
	for _, cf := range []float64{1.0, 1.25, 2.0, 4.0} {
		b.Run(capName(cf), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := trainer.Config{
					Model: model.LLaMA7B, Spec: cluster.ClusterA, Nodes: 2,
					CapacityFactor: cf, Seed: 9,
				}
				batch := cfg.Batch(workload.GitHub.Batch)
				res, err := trainer.Run(cfg, zep.Full(), batch)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.TokensPerSec, "tokens/s")
			}
		})
	}
}

func capName(cf float64) string {
	switch cf {
	case 1.0:
		return "L=1.00x"
	case 1.25:
		return "L=1.25x"
	case 2.0:
		return "L=2.00x"
	default:
		return "L=4.00x"
	}
}

// ---------------------------------------------------------------------
// Runner engine: the same (dataset × method × seed) grid executed on one
// worker vs the full pool. The parallel variant's ns/op over the serial
// one is the engine's wall-clock speedup; results are bit-identical.
// ---------------------------------------------------------------------

func runnerGrid() []runner.Job {
	var jobs []runner.Job
	for _, d := range workload.Eval {
		for mi, m := range experiments.Methods() {
			for s := 0; s < 2; s++ {
				jobs = append(jobs, runner.Job{
					Key: fmt.Sprintf("%s/m%d/s%d", d.Name, mi, s),
					Config: trainer.Config{
						Model: model.LLaMA7B, Spec: cluster.ClusterA, Nodes: 2,
						TokensPerGPU: 4096, Seed: int64(1000 + 37*s),
					},
					Method:      m,
					Sample:      d.Batch,
					SamplerName: d.Name,
				})
			}
		}
	}
	return jobs
}

func runnerBench(b *testing.B, workers int) {
	jobs := runnerGrid()
	b.ReportMetric(float64(len(jobs)), "jobs")
	for i := 0; i < b.N; i++ {
		// A fresh engine each iteration: the memo cache would otherwise
		// turn every iteration after the first into pure cache hits.
		eng := runner.New(runner.Options{Workers: workers})
		rs, err := eng.Run(context.Background(), jobs)
		if err != nil {
			b.Fatal(err)
		}
		if rs.Executed != len(jobs) {
			b.Fatalf("executed %d of %d jobs", rs.Executed, len(jobs))
		}
	}
}

func BenchmarkRunnerSerial(b *testing.B)   { runnerBench(b, 1) }
func BenchmarkRunnerParallel(b *testing.B) { runnerBench(b, runtime.GOMAXPROCS(0)) }

// Core-loop micro-benchmarks: partitioner and remapping solver costs,
// the "Sequence Partition" row of Table 3.
func BenchmarkPartitionerPlan(b *testing.B) {
	cfg := trainer.Config{Model: model.LLaMA7B, Spec: cluster.ClusterA, Nodes: 4, Seed: 3}
	batch := cfg.Batch(workload.GitHub.Batch)
	env, err := cfg.NewEnv()
	if err != nil {
		b.Fatal(err)
	}
	_ = env
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trainer.Run(cfg, zep.Method{}, batch); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// Fig. 15 planner fast path: planning latency only (no simulation), at
// the 256-rank sweep point, over the same churning stream the fig15
// experiment measures. The incremental variant's ns/op and allocs/op
// against the full solve are the headline numbers the CI bench gate
// tracks — the fast path must stay ≥2x ahead at this scale.
// ---------------------------------------------------------------------

// fig15BenchRanks is the gated sweep point.
const fig15BenchRanks = 256

// fig15BenchWarm sizes the warmup prefix: one stretch of stream long
// enough to leave either planner in steady state (scratch buffers grown,
// the incremental planner holding a patch base) before the timer starts.
// Both benchmarks then measure per-iteration *re-planning* — the
// campaign hot-path quantity. The measured window walks distinct
// successive batches up to fig15BenchStreamCap and then cycles: the cap
// bounds setup cost at O(cap) instead of O(b.N) under time-based
// -benchtime, and the cycle boundary's accumulated delta exceeds the
// patch admission bound, so cycling costs one honest full solve per lap
// rather than handing the incremental path exact cache replays.
const (
	fig15BenchWarm      = 8
	fig15BenchStreamCap = 512
)

// fig15BenchStream builds the benchmark stream for n measured
// iterations at a world size, and an index function mapping measured
// iteration i to its batch.
func fig15BenchStream(ranks, n int) ([][]seq.Sequence, func(i int) int) {
	measured := n
	if measured > fig15BenchStreamCap {
		measured = fig15BenchStreamCap
	}
	stream := experiments.Fig15Stream(ranks, fig15BenchWarm+measured)
	return stream, func(i int) int { return fig15BenchWarm + i%measured }
}

// fig15FullBench measures the full hierarchical solve at one world size
// and solve fan-out over the churning stream.
func fig15FullBench(b *testing.B, ranks, solveWorkers int) {
	stream, at := fig15BenchStream(ranks, b.N)
	cfg := experiments.Fig15PlanConfig(ranks)
	cfg.SolveWorkers = solveWorkers
	p, err := partition.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < fig15BenchWarm; i++ {
		if _, err := p.Plan(stream[i]); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Plan(stream[at(i)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig15PlanFull(b *testing.B) { fig15FullBench(b, fig15BenchRanks, 1) }

// BenchmarkFig15ParallelSolve is the tentpole's perf pin, in two parts.
// The solve-workers variants fan one session's full solve at the
// 1024-rank sweep point — workers=4 must stay well ahead of workers=1
// ns/op (the ≥1.5x acceptance bar; CI gates the ratio via benchgate).
// The sessions variant measures aggregate plans/sec when GOMAXPROCS
// concurrent sessions each run their own serial solve — the zeppelind
// fleet scenario, where parallelism comes from the session pool rather
// than from fanning a single solve.
func BenchmarkFig15ParallelSolve(b *testing.B) {
	const ranks = 1024
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("solve-workers=%d", w), func(b *testing.B) {
			fig15FullBench(b, ranks, w)
		})
	}
	b.Run("sessions", func(b *testing.B) {
		stream, at := fig15BenchStream(ranks, fig15BenchStreamCap)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			// b.Error, not b.Fatal: FailNow must not run off the
			// benchmark goroutine.
			p, err := partition.New(experiments.Fig15PlanConfig(ranks))
			if err != nil {
				b.Error(err)
				return
			}
			i := 0
			for pb.Next() {
				if _, err := p.Plan(stream[at(i)]); err != nil {
					b.Error(err)
					return
				}
				i++
			}
		})
		b.StopTimer()
		if secs := b.Elapsed().Seconds(); secs > 0 {
			b.ReportMetric(float64(b.N)/secs, "plans/s")
		}
	})
}

func BenchmarkFig15PlanIncremental(b *testing.B) {
	stream, at := fig15BenchStream(fig15BenchRanks, b.N)
	cfg := experiments.Fig15PlanConfig(fig15BenchRanks)
	p := partition.NewIncremental(partition.IncrementalConfig{MaxDeltaFrac: experiments.Fig15MaxDeltaFrac})
	for i := 0; i < fig15BenchWarm; i++ {
		if _, _, err := p.Plan(cfg, stream[i]); err != nil {
			b.Fatal(err)
		}
	}
	warm := p.Counters()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := p.Plan(cfg, stream[at(i)]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	// Mode split of the measured window only (warmup excluded).
	c := p.Counters()
	if total := c.Plans() - warm.Plans(); total > 0 {
		b.ReportMetric(float64(c.Patched-warm.Patched)/float64(total), "patched-frac")
	}
}

// BenchmarkFig15PlanIncrementalReuse is the steady-state allocation
// guarantee: with ReusePlans the warm patch path must report 0 allocs/op
// under -benchmem. The measured window bounces through the stream
// (…510, 511, 510, 509…) instead of wrapping, so every step is a small
// adjacent-batch delta and no lap boundary ever forces an allocating
// full solve; MaxPatchRun is lifted for the same reason. The pinned
// assertion lives in internal/partition's TestIncrementalPatchZeroAlloc
// — this benchmark reports the number CI tracks.
func BenchmarkFig15PlanIncrementalReuse(b *testing.B) {
	stream, _ := fig15BenchStream(fig15BenchRanks, fig15BenchStreamCap)
	cfg := experiments.Fig15PlanConfig(fig15BenchRanks)
	p := partition.NewIncremental(partition.IncrementalConfig{
		MaxDeltaFrac:      experiments.Fig15MaxDeltaFrac,
		MaxImbalanceDrift: 0.5,
		MaxPatchRun:       1 << 30,
		ReusePlans:        true,
	})
	bounce := func(i int) int {
		span := len(stream) - fig15BenchWarm - 1
		if k := i % (2 * span); k < span {
			return fig15BenchWarm + k
		} else {
			return fig15BenchWarm + 2*span - k
		}
	}
	for i := 0; i < fig15BenchWarm; i++ {
		if _, _, err := p.Plan(cfg, stream[i]); err != nil {
			b.Fatal(err)
		}
	}
	warm := p.Counters()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := p.Plan(cfg, stream[bounce(i)]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	c := p.Counters()
	if total := c.Plans() - warm.Plans(); total > 0 {
		b.ReportMetric(float64(c.Patched-warm.Patched)/float64(total), "patched-frac")
	}
}

// BenchmarkFig15ScalingSweep regenerates the whole fig15 experiment (all
// world sizes, both paths) — the end-to-end cost of the scaling figure.
func BenchmarkFig15ScalingSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig15(quick)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(experiments.Fig15ScalingSpeedup(res), "speedup-8192-ranks-x")
	}
}

// ---------------------------------------------------------------------
// Decision-tracing overhead: the same campaign with and without a
// decision trace attached. CI gates BenchmarkDecisionOverhead at ≤5%
// ns/op over BenchmarkDecisionBaseline (benchgate -ratio), so recording
// every replan/admission/placement choice stays effectively free.
// ---------------------------------------------------------------------

// decisionBenchIters keeps one campaign run ~tens of milliseconds: long
// enough that per-iteration record allocations would show up, short
// enough for -count 5 sampling in CI.
const decisionBenchIters = 30

func decisionBenchConfig(tr *decision.Trace) campaign.Config {
	return campaign.Config{
		Trainer: trainer.Config{
			Model: model.LLaMA3B, Spec: cluster.ClusterA, Nodes: 1, TP: 1,
			TokensPerGPU: 4096, Seed: 11,
		},
		Method:    zep.FullIncremental(),
		Iters:     decisionBenchIters,
		Arrival:   campaign.Drift{Path: []workload.Dataset{workload.ArXiv, workload.GitHub}, Iters: decisionBenchIters},
		Policy:    campaign.Threshold{Ratio: 1.3},
		Decisions: tr,
	}
}

func BenchmarkDecisionBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := campaign.Run(context.Background(), decisionBenchConfig(nil)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecisionOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr := &decision.Trace{}
		if _, err := campaign.Run(context.Background(), decisionBenchConfig(tr)); err != nil {
			b.Fatal(err)
		}
		if tr.Len() == 0 {
			b.Fatal("trace recorded nothing")
		}
	}
}

// BenchmarkRemapSolve isolates the Eq. 2 remapping solver — the other
// planner-stack component on the re-planning hot path. Each op solves a
// fixed batch of 32 distinct skewed 256-rank layouts: a single solve is
// ~25µs, too small for a regression gate to separate code from scheduler
// jitter, so the op is sized to keep the gated ns/op stable.
func BenchmarkRemapSolve(b *testing.B) {
	const layouts = 32
	c := cluster.MustNew(cluster.ClusterA, fig15BenchRanks/8)
	rng := rand.New(rand.NewSource(6))
	batch := make([][]int, layouts)
	for l := range batch {
		tokens := make([]int, c.World())
		for i := range tokens {
			tokens[i] = 3000 + rng.Intn(3000)
		}
		batch[l] = tokens
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, tokens := range batch {
			if _, err := remap.Solve(tokens, c, 1e-9, 8e-9); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTuneSearch is the closed-loop policy search end to end: grid
// seeding plus the mutation loop over short drifting campaigns — the
// same shape the CI tune job smokes, sized so one op is a whole search
// (baseline + budget candidate evaluations) rather than one campaign.
func BenchmarkTuneSearch(b *testing.B) {
	sp, err := tune.ParseSpace("policy=threshold,threshold=1.1:1.5")
	if err != nil {
		b.Fatal(err)
	}
	opts := tune.Options{
		Base:    experiments.TuneScenario(12),
		Space:   sp,
		Budget:  4,
		Iters:   12,
		Workers: 4,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := tune.Search(context.Background(), opts)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Evaluated == 0 {
			b.Fatal("search evaluated nothing")
		}
	}
}
