// Package zeppelin is a from-scratch Go reproduction of "Zeppelin:
// Balancing Variable-length Workloads in Data Parallel Large Model
// Training" (EUROSYS 2026). The root package only anchors the module's
// benchmark harness (bench_test.go); the public API lives in
// pkg/zeppelin and the implementation under internal/:
//
//   - pkg/zeppelin        — the versioned public v1 API: one-shot plan
//     requests (Planner), iterator-style campaign streaming (Campaign,
//     one simulated iteration per Next call), experiment regeneration
//     by name, the planner fast-path bench, build/version
//     identification, and the fleet-hardening layer: per-class
//     token-bucket admission control (Admission, TokenBucket), the
//     process-wide shared plan cache (PlanCache — exact full-solve
//     reuse across plan requests and campaign sessions, bit-identical
//     by construction), the load-generation engine (RunLoad: paced
//     plan RPS plus concurrent campaign streams, latency percentiles,
//     benchfmt artifact, and — when targets expose /metrics — the
//     p99.9 tail, fleet decisions/sec, and admission saturation), and
//     the observability surface: per-campaign decision traces
//     (WithCampaignDecisions, DecisionRecord with scored
//     alternatives) and the counterfactual replay engine (RunReplay:
//     re-run a recorded stream with exactly one replan verdict
//     flipped — FlipSpec — and report the goodput/p99/wall-time
//     delta; a no-flip replay must be bit-identical), and the
//     closed-loop tuning surface (RunTune: multi-objective policy
//     search over full campaigns with a deterministic winner, plus
//     AutoscaleSpec/ParseAutoscaleSpec for the campaign autoscaler),
//     and the serving-scenario surface (ServeSpec/ParseServeSpec: the
//     -serve flag grammar as a wire object, CompareServeRoutes for the
//     balance-vs-affinity routing grid, GenerateServeTimeline plus
//     Write/ReadServeTrace for NDJSON trace-replay v2, and
//     IsValidationError to tell client mistakes from engine failures).
//     Context-aware throughout (cancellation stops campaigns between
//     iterations and grids between jobs) with the JSON wire schema
//     pinned by golden tests. cmd/zeppelin is its reference client
//     (campaign, serve, replay, tune, bench, fig13…fig16 subcommands);
//     cmd/zeppelind serves it over HTTP (POST /v1/plan, POST
//     /v1/campaigns + NDJSON event streams honoring client disconnect
//     and SIGTERM drain, GET /v1/campaigns/{id}/decisions, POST
//     /v1/campaigns/{id}/replay, GET /v1/experiments/{name}, POST
//     /v1/tune, GET /v1/stats, GET /v1/version — all /v1 routes behind
//     admission control with structured 429s — plus unadmitted GET
//     /healthz and GET /metrics, and an NDJSON decision log via
//     -decision-log); cmd/zeppelin-loadgen drives fleet-shaped traffic
//     at one or more replicas and verifies byte-identical plans on the
//     way.
//
//   - internal/sim        — deterministic discrete-event simulator
//
//   - internal/cluster    — GPU cluster topologies (Clusters A, B, C)
//
//   - internal/model      — transformer configurations (3B…30B, 8×550M MoE)
//
//   - internal/costmodel  — kernel and transfer time models, zone analysis
//
//   - internal/workload   — Table 2 / Fig. 1 length distributions; its
//     serve subpackage generates inference-style request streams:
//     multi-client Poisson/Gamma/Weibull arrivals under per-window rate
//     schedules, SLO classes with deadlines, session/prefix structure
//     for KV-affinity routing, and an NDJSON trace round-trip
//     (trace-replay v2) that makes recorded timelines a first-class
//     generator
//
//   - internal/seq        — sequences, rings, placement plans
//
//   - internal/flow       — max-flow / min-cost-flow solvers
//
//   - internal/partition  — hierarchical sequence partitioner (Alg. 1 + 2)
//     plus the incremental re-planner: a keyed plan cache with exact
//     reuse and, under a configured tolerance, delta patching of the
//     previous plan (departures cut, arrivals greedily re-placed) with
//     imbalance-drift self-regulation and full-solve fallback on any
//     health or capacity change; SharedCache adds the process-wide
//     tier behind it — a mutex-guarded LRU of full solves only (never
//     patched plans), shared across planners with hit/miss counting
//
//   - internal/attention  — three-queue ring attention engine
//
//   - internal/routing    — three-step multi-NIC communication routing
//
//   - internal/remap      — Eq. 2 remapping layer
//
//   - internal/baselines  — TE CP, LLaMA CP, Hybrid DP
//
//   - internal/zeppelin   — the assembled system (trainer.Method); its
//     Incremental front-end plans through the incremental re-planner and
//     a keyed cache of Eq. 2 remapping solutions (exact mode is
//     bit-identical to the stateless method, the property campaigns rely
//     on)
//
//   - internal/trainer    — end-to-end iteration simulation
//
//   - internal/runner     — concurrent, memoizing experiment engine;
//     grids and fan-outs honor context cancellation without leaking
//     pool workers
//
//   - internal/campaign   — streaming multi-iteration campaigns: arrival
//     processes, online re-planning policies, the queue-depth/utilization
//     autoscaler riding the elastic-rescale path (bounded step, cooldown,
//     capacity-clamped), per-iteration metrics, consumed either all at
//     once (Run) or record by record through the iterator-style Stream
//     that pkg/zeppelin and zeppelind expose; serve campaigns swap the
//     training arrival for a pre-generated request timeline with
//     priority/SJF batch formation, KV-affinity routing (decision-traced
//     route choices), per-class deadline accounting, and per-class
//     goodput/violation metrics in the report
//
//   - internal/decision   — decision tracing for the campaign engine: one
//     record per replan/placement/admission choice with the scored
//     alternatives and controller state, a deterministic NDJSON
//     encoding, and the single-decision flip override the
//     counterfactual replay engine drives
//
//   - internal/tune       — closed-loop policy tuning: a multi-objective
//     fitness function (goodput, p99 iteration time, migration cost,
//     utilization; weights normalized, baseline-relative) evaluated by
//     running full campaigns, a declared-space grammar (policy,
//     threshold, replan cost, capacity, autoscaler gains), and a
//     grid-seeded mutation/selection search fanned through
//     runner.ForEach with a bit-identical winner at every worker count
//
//   - internal/promtext   — hand-rolled Prometheus text exposition
//     (format 0.0.4, no client-library dependency): a builder for
//     counters and gauges, concurrency-safe histograms, and the
//     parser zeppelin-loadgen scrapes replicas with
//
//   - internal/faults     — deterministic fault-and-elasticity schedules:
//     stragglers, NIC degradation, fail-stop node loss with
//     checkpoint-restart, planned elastic shrink/grow with Eq. 2 state
//     migration
//
//   - internal/experiments— regenerators for every paper table and figure,
//     plus the fig13 streaming-campaign and fig14 fault comparisons,
//     the fig15 planner fast-path scaling sweep (64 → 1024 ranks, plan
//     latency and allocations, full vs incremental), and the fig16
//     serving-scenario routing comparison (bursty multi-client stream,
//     balance vs KV-affinity, per-class SLO tables)
//
//   - internal/trace      — Fig. 12-style timeline and campaign rendering
//
//   - internal/benchfmt   — benchmark-artifact JSON schema shared by the
//     CI bench-regression gate (cmd/benchgate), `zeppelin bench`, and
//     zeppelin-loadgen's throughput artifact
//
// See README.md for a tour and DESIGN.md for the system inventory and the
// per-experiment index.
package zeppelin
